"""Tests for the temporal plane: event scheduler, device profiles, staleness
weights, availability-aware sampling, and the sync/async/buffered regimes."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import build_method
from repro.continual import DomainIncrementalScenario
from repro.datasets import SyntheticDomainDataset
from repro.federated import FederatedDomainIncrementalSimulation
from repro.federated.aggregation import staleness_weight
from repro.federated.clock import (
    CostModel,
    EventScheduler,
    PROFILE_TIERS,
    build_profile,
)
from repro.federated.communication import ClientUpdate
from repro.federated.config import FederatedConfig
from repro.federated.sampling import NoAvailableClientsError, sample_clients
from repro.federated.server import FederatedServer
from repro.nn.linear import Linear


def _scenario(tiny_spec, num_tasks=2):
    return DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=num_tasks)


def _run(tiny_spec, tiny_backbone_config, config, method_name="finetune", num_tasks=2):
    scenario = _scenario(tiny_spec, num_tasks=num_tasks)
    method = build_method(method_name, tiny_backbone_config, num_tasks=scenario.num_tasks)
    simulation = FederatedDomainIncrementalSimulation(scenario, method, config)
    return simulation, simulation.run()


def _temporal_config(tiny_federated_config, **overrides):
    return replace(tiny_federated_config, clients_per_round=2, rounds_per_task=2, **overrides)


class TestEventScheduler:
    @given(st.lists(st.floats(0.0, 5.0, allow_nan=False), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_pop_order_is_deterministic_function_of_schedule(self, delays):
        """Same schedule program -> same pop trace, with monotone times."""

        def run_program():
            scheduler = EventScheduler()
            pending = 0
            trace = []
            for index, delay in enumerate(delays):
                scheduler.schedule(delay, "event", index)
                pending += 1
                if index % 3 == 2:  # interleave pops with schedules
                    event = scheduler.pop()
                    pending -= 1
                    trace.append((event.time, event.seq, event.client_id))
            while pending:
                event = scheduler.pop()
                pending -= 1
                trace.append((event.time, event.seq, event.client_id))
            return trace

        first, second = run_program(), run_program()
        assert first == second
        times = [time for time, _, _ in first]
        assert times == sorted(times)  # the clock never runs backwards

    def test_simultaneous_events_pop_in_schedule_order(self):
        scheduler = EventScheduler()
        for index in range(5):
            scheduler.schedule(0.0, "tie", index)
        assert [scheduler.pop().client_id for _ in range(5)] == [0, 1, 2, 3, 4]

    @given(st.lists(st.floats(0.0, 3.0, allow_nan=False), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_no_event_before_its_dependency(self, delays):
        """An event scheduled while processing another can never precede it."""
        scheduler = EventScheduler()
        scheduled_at = {}
        for index, delay in enumerate(delays):
            event = scheduler.schedule(delay, "event", index)
            scheduled_at[event.seq] = scheduler.now
            if len(scheduler) > 2:
                popped = scheduler.pop()
                assert popped.time >= scheduled_at[popped.seq]
        while len(scheduler):
            popped = scheduler.pop()
            assert popped.time >= scheduled_at[popped.seq]

    def test_validation(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule(-0.1, "bad")
        with pytest.raises(ValueError):
            scheduler.schedule(float("nan"), "bad")
        with pytest.raises(IndexError):
            scheduler.pop()
        with pytest.raises(ValueError):
            scheduler.advance(-1.0)
        assert scheduler.advance(2.5) == 2.5


class TestStalenessWeight:
    @given(st.floats(0.0, 100.0), st.floats(0.0, 5.0))
    @settings(max_examples=100, deadline=None)
    def test_weight_is_one_at_zero_staleness(self, staleness, decay):
        assert staleness_weight(0.0, decay) == 1.0
        assert 0.0 < staleness_weight(staleness, decay) <= 1.0

    @given(st.floats(0.0, 100.0), st.floats(0.0, 100.0), st.floats(0.0, 5.0))
    @settings(max_examples=100, deadline=None)
    def test_monotone_non_increasing_in_staleness(self, a, b, decay):
        lo, hi = min(a, b), max(a, b)
        assert staleness_weight(lo, decay) >= staleness_weight(hi, decay)

    def test_zero_decay_disables_discount(self):
        assert staleness_weight(37.0, 0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            staleness_weight(-1.0, 0.5)
        with pytest.raises(ValueError):
            staleness_weight(1.0, -0.5)


class TestDeviceProfiles:
    def test_instant_tier_is_the_temporal_noop(self):
        profile = build_profile("instant", seed=0, client_id=3)
        assert profile.compute_multiplier == 0.0
        assert profile.always_online
        cost = CostModel()
        assert cost.training_seconds(profile, 100, 16, 5) == 0.0
        assert cost.transfer_seconds(profile, 10**9) == 0.0

    def test_profiles_are_deterministic_per_seed(self):
        for tier in PROFILE_TIERS:
            assert build_profile(tier, seed=5, client_id=2) == build_profile(tier, 5, 2)
        assert build_profile("extreme", 5, 2) != build_profile("extreme", 6, 2)

    def test_unknown_tier_raises(self):
        with pytest.raises(ValueError):
            build_profile("warp", seed=0, client_id=0)
        with pytest.raises(ValueError):
            FederatedConfig(device_profile="warp")

    def test_online_trace_is_deterministic(self):
        profile = build_profile("extreme", seed=0, client_id=1)
        trace = [profile.is_online(0, task_id=1, slot=s) for s in range(50)]
        assert trace == [profile.is_online(0, 1, s) for s in range(50)]

    def test_churn_is_per_task(self):
        profile = build_profile("extreme", seed=0, client_id=1)
        for task_id in range(10):
            present = profile.in_task(0, task_id)
            if not present:
                # Churned out -> offline at every slot of that task.
                assert not any(profile.is_online(0, task_id, s) for s in range(5))

    def test_heterogeneous_tiers_spread_clients(self):
        multipliers = {build_profile("extreme", 0, cid).compute_multiplier for cid in range(8)}
        assert len(multipliers) == 8
        homogeneous = {build_profile("homogeneous", 0, cid).compute_multiplier for cid in range(8)}
        assert homogeneous == {1.0}


class TestAvailabilitySampling:
    def test_filter_restricts_selection(self):
        online = {1, 3, 5}
        chosen = sample_clients(
            list(range(6)), 6, np.random.default_rng(0), available=lambda c: c in online
        )
        assert chosen == [1, 3, 5]

    def test_all_offline_raises_clear_error(self):
        with pytest.raises(NoAvailableClientsError, match="offline after availability"):
            sample_clients([1, 2, 3], 2, np.random.default_rng(0), available=lambda c: False)

    def test_empty_active_set_still_a_value_error(self):
        with pytest.raises(ValueError):
            sample_clients([], 2, np.random.default_rng(0), available=lambda c: True)

    def test_pass_through_filter_matches_no_filter(self):
        plain = sample_clients(list(range(20)), 5, np.random.default_rng(9))
        filtered = sample_clients(
            list(range(20)), 5, np.random.default_rng(9), available=lambda c: True
        )
        assert plain == filtered


class TestSyncTemporal:
    def test_sync_trace_is_round_robin_rounds(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        config = _temporal_config(tiny_federated_config, device_profile="homogeneous")
        _, result = _run(tiny_spec, tiny_backbone_config, config)
        rounds = [e for e in result.event_log if e["kind"] == "round"]
        assert [e["kind"] for e in result.event_log] == ["round"] * 4
        assert [(e["task_id"], e["round_index"]) for e in rounds] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]
        times = [e["time"] for e in rounds]
        assert times == sorted(times)
        assert result.sim_time == times[-1] > 0.0

    def test_instant_profile_never_moves_the_clock(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        config = _temporal_config(tiny_federated_config)
        _, result = _run(tiny_spec, tiny_backbone_config, config)
        assert result.sim_time == 0.0
        assert all(e["time"] == 0.0 for e in result.event_log)

    def test_homogeneous_profile_changes_only_the_clock(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        """Always-online finite-speed devices time the run without touching
        its numbers: matrix, losses and ledger match the instant profile
        bit-for-bit."""
        base = _temporal_config(tiny_federated_config)
        _, instant = _run(tiny_spec, tiny_backbone_config, base)
        _, timed = _run(
            tiny_spec, tiny_backbone_config, replace(base, device_profile="homogeneous")
        )
        np.testing.assert_array_equal(instant.metrics.matrix, timed.metrics.matrix)
        assert instant.round_losses == timed.round_losses
        assert instant.communication.uploaded_bytes == timed.communication.uploaded_bytes
        assert instant.communication.broadcast_bytes == timed.communication.broadcast_bytes
        assert timed.sim_time > instant.sim_time == 0.0

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_sync_instant_parity_across_executors(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, dtype
    ):
        """mode="sync" + instantaneous profiles is the untimed engine,
        bit-for-bit, under both executors and both dtypes."""
        base = _temporal_config(tiny_federated_config, mode="sync", dtype=dtype)
        _, serial = _run(tiny_spec, tiny_backbone_config, base)
        _, parallel = _run(
            tiny_spec,
            tiny_backbone_config,
            replace(base, executor="parallel", num_workers=2),
        )
        np.testing.assert_array_equal(serial.metrics.matrix, parallel.metrics.matrix)
        assert serial.round_losses == parallel.round_losses
        assert serial.sim_time == parallel.sim_time == 0.0

    def test_sim_time_limit_skips_remaining_rounds(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        full_config = _temporal_config(tiny_federated_config, device_profile="homogeneous")
        _, full = _run(tiny_spec, tiny_backbone_config, full_config)
        first_round_ends = full.event_log[0]["time"]
        _, limited = _run(
            tiny_spec,
            tiny_backbone_config,
            replace(full_config, sim_time_limit=first_round_ends),
        )
        kinds = [e["kind"] for e in limited.event_log]
        assert kinds[0] == "round"
        assert "skipped_round" in kinds
        assert len([k for k in kinds if k == "round"]) < 4
        assert limited.sim_time <= full.sim_time


class TestAsyncModes:
    def _result(self, tiny_spec, tiny_backbone_config, tiny_federated_config, **overrides):
        config = _temporal_config(tiny_federated_config, **overrides)
        return _run(tiny_spec, tiny_backbone_config, config)

    @pytest.mark.parametrize("mode", ["async", "buffered"])
    def test_deterministic_per_seed(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, mode
    ):
        run = lambda: self._result(
            tiny_spec, tiny_backbone_config, tiny_federated_config,
            mode=mode, device_profile="moderate",
        )[1]
        first, second = run(), run()
        np.testing.assert_array_equal(first.metrics.matrix, second.metrics.matrix)
        assert first.round_losses == second.round_losses
        assert first.event_log == second.event_log
        assert first.sim_time == second.sim_time

    def test_async_trains_the_sync_budget_and_applies_per_arrival(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        _, result = self._result(
            tiny_spec, tiny_backbone_config, tiny_federated_config,
            mode="async", device_profile="homogeneous",
        )
        budget = 2 * 2  # rounds_per_task * clients_per_round
        for task_id in (0, 1):
            events = [e for e in result.event_log if e.get("task_id") == task_id]
            assert sum(e["kind"] == "dispatch" for e in events) == budget
            arrivals = [e for e in events if e["kind"] == "arrival"]
            assert len(arrivals) == budget
            assert all(e["staleness"] >= 0 for e in arrivals)
            # Zero-staleness arrivals blend at the full base rate; stale ones lower.
            assert all(0.0 < e["mixing"] <= 0.5 for e in arrivals)
        # One aggregation (and one recorded loss) per arrival.
        assert len(result.round_losses) == 2 * budget
        assert result.sim_time > 0.0

    def test_buffered_flushes_every_k_arrivals(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        _, result = self._result(
            tiny_spec, tiny_backbone_config, tiny_federated_config,
            mode="buffered", device_profile="homogeneous", buffer_size=3,
        )
        budget = 2 * 2
        for task_id in (0, 1):
            flushes = [
                e for e in result.event_log
                if e["kind"] == "flush" and e["task_id"] == task_id
            ]
            # 4 arrivals with K=3: one full flush plus the task-end partial.
            assert [f["size"] for f in flushes] == [3, 1]
        assert len(result.round_losses) == 4  # one loss entry per flush

    def test_async_modes_run_under_the_parallel_executor(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        _, serial = self._result(
            tiny_spec, tiny_backbone_config, tiny_federated_config,
            mode="async", device_profile="mild",
        )
        _, parallel = self._result(
            tiny_spec, tiny_backbone_config, tiny_federated_config,
            mode="async", device_profile="mild", executor="parallel", num_workers=2,
        )
        np.testing.assert_array_equal(serial.metrics.matrix, parallel.metrics.matrix)
        assert serial.round_losses == parallel.round_losses
        assert serial.event_log == parallel.event_log

    def test_async_refil_payload_machinery_sees_arrivals(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        config = _temporal_config(
            tiny_federated_config, mode="async", device_profile="mild"
        )
        scenario = _scenario(tiny_spec)
        method = build_method("refil", tiny_backbone_config, num_tasks=scenario.num_tasks)
        result = FederatedDomainIncrementalSimulation(scenario, method, config).run()
        assert not method.prompt_aggregator.store.is_empty
        assert all(np.isfinite(loss) for loss in result.round_losses)

    def test_async_fedewc_blends_fisher_instead_of_overwriting(
        self, tiny_backbone_config
    ):
        """A lone async arrival must not replace the population Fisher: the
        new client's estimate enters an EMA at the arrival's mixing rate."""
        method = build_method("fedewc", tiny_backbone_config, num_tasks=2)
        model = method.build_model()
        server = FederatedServer(model)
        server.ledger_autorecord = False

        param_names = [name for name, _ in model.named_parameters()]
        spiked = param_names[0]

        def update_with_fisher(spike):
            state = {k: v.copy() for k, v in server.global_state.items()}
            fisher = {
                name: np.full_like(param.data, spike if name == spiked else 1.0)
                for name, param in model.named_parameters()
            }
            return ClientUpdate(0, state, num_samples=4, payload={"fisher": fisher})

        method.aggregate(server, [update_with_fisher(1.0)])
        first = {k: v.copy() for k, v in method._fisher.items()}
        assert all(np.all(v == 1.0) for v in first.values())  # normalized flat
        # The arriving Fisher normalizes to 1.0 on the spiked param and 0.5
        # elsewhere; an EMA at mixing 0.25 lands at 0.875, where the old
        # last-writer-wins behaviour would land at 0.5.
        method.apply_async_update(server, update_with_fisher(2.0), mixing=0.25)
        for name in param_names:
            expected = 1.0 if name == spiked else 0.875
            np.testing.assert_allclose(method._fisher[name], expected)
        first = {k: v.copy() for k, v in method._fisher.items()}
        # An arrival without a Fisher payload leaves the estimate untouched.
        state = {k: v.copy() for k, v in server.global_state.items()}
        method.apply_async_update(server, ClientUpdate(1, state, 4), mixing=0.25)
        for name in first:
            np.testing.assert_allclose(method._fisher[name], first[name])

    def test_eval_every_snapshots_carry_sim_time(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        _, result = self._result(
            tiny_spec, tiny_backbone_config, tiny_federated_config,
            mode="async", device_profile="homogeneous", eval_every=2, eval_batch_size=4,
        )
        assert result.round_eval_history
        times = [entry["sim_time"] for entry in result.round_eval_history]
        assert times == sorted(times)
        assert all(entry["accuracies"] for entry in result.round_eval_history)


class TestServerStalenessPrimitives:
    def test_apply_update_blends_at_the_mixing_rate(self):
        model = Linear(2, 2, rng=np.random.default_rng(0))
        server = FederatedServer(model)
        before = {key: value.copy() for key, value in server.global_state.items()}
        shifted = {key: value + 2.0 for key, value in before.items()}
        server.apply_update(ClientUpdate(0, shifted, num_samples=4), mixing=0.25)
        for key in before:
            np.testing.assert_allclose(server.global_state[key], before[key] + 0.5)
        assert server.round_counter == 1
        with pytest.raises(ValueError):
            server.apply_update(ClientUpdate(0, shifted, num_samples=4), mixing=0.0)
        with pytest.raises(ValueError):
            server.apply_update(ClientUpdate(0, {"nope": np.zeros(2)}, 4), mixing=0.5)

    def test_aggregation_scale_weights_the_next_aggregate(self):
        model = Linear(1, 1, rng=np.random.default_rng(0))
        server = FederatedServer(model)
        updates = [
            ClientUpdate(0, {key: np.zeros_like(value) for key, value in server.global_state.items()}, 10),
            ClientUpdate(1, {key: np.ones_like(value) for key, value in server.global_state.items()}, 10),
        ]
        # Scale the second update to zero weight: the aggregate is all-zeros.
        with server.aggregation_scale([1.0, 0.0]):
            server.aggregate(updates)
        assert all(np.all(value == 0.0) for value in server.global_state.values())
        # The scale is consumed: a later aggregate is plain FedAvg again.
        server.aggregate(updates)
        assert all(np.all(value == 0.5) for value in server.global_state.values())

    def test_aggregation_scale_length_mismatch_raises(self):
        model = Linear(1, 1, rng=np.random.default_rng(0))
        server = FederatedServer(model)
        update = ClientUpdate(0, dict(server.global_state), 10)
        with pytest.raises(ValueError):
            with server.aggregation_scale([1.0, 1.0]):
                server.aggregate([update])


class TestLifecycle:
    def test_context_manager_closes_owned_eval_pool(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        config = replace(
            tiny_federated_config, eval_executor="parallel", num_workers=2, eval_batch_size=4
        )
        scenario = _scenario(tiny_spec)
        method = build_method("finetune", tiny_backbone_config, num_tasks=scenario.num_tasks)
        with FederatedDomainIncrementalSimulation(scenario, method, config) as simulation:
            assert simulation._owns_eval_executor
            simulation.run_task(scenario.task(0))
            assert simulation.eval_executor._pool is not None
        assert simulation.eval_executor._pool is None
        simulation.close()  # idempotent

    def test_run_cache_folds_inert_temporal_knobs(self):
        from repro.experiments.runner import _normalize_execution_knobs

        base = FederatedConfig()
        # Buffered/staleness knobs are inert in sync mode; an instant profile
        # makes a simulated-time budget inert.
        inert = replace(base, buffer_size=7, staleness_decay=2.0, sim_time_limit=9.0)
        assert _normalize_execution_knobs(inert) == _normalize_execution_knobs(base)
        # The device tier always stays in the key: even an always-online tier
        # changes the run's temporal telemetry (sim_time, event_log).
        timed = replace(base, device_profile="homogeneous")
        assert _normalize_execution_knobs(timed) != _normalize_execution_knobs(base)
        churny = replace(base, device_profile="moderate")
        assert _normalize_execution_knobs(churny) != _normalize_execution_knobs(base)
        async_mode = replace(base, mode="async")
        assert _normalize_execution_knobs(async_mode) != _normalize_execution_knobs(base)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FederatedConfig(mode="lockstep")
        with pytest.raises(ValueError):
            FederatedConfig(buffer_size=-1)
        with pytest.raises(ValueError):
            FederatedConfig(staleness_decay=-0.1)
        with pytest.raises(ValueError):
            FederatedConfig(sim_time_limit=-1.0)
        with pytest.raises(ValueError, match="bandwidth_limit requires mode='sync'"):
            # One upload per arrival would make the keep-one rule deliver
            # every over-budget frame: the budget must be rejected, not inert.
            FederatedConfig(mode="async", bandwidth_limit=1000)
        config = FederatedConfig(mode="buffered", device_profile="extreme", buffer_size=4)
        assert config.mode == "buffered"
