"""Tests for the synthetic domain-shift datasets, loaders and registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    ArrayDataset,
    DataLoader,
    DomainDatasetSpec,
    SyntheticDomainDataset,
    available_datasets,
    build_dataset,
    generate_domain_split,
    get_alternate_domain_order,
    get_dataset_spec,
    train_test_split,
)
from repro.datasets.synthetic import class_pattern, domain_style
from repro.datasets.transforms import DomainStyle, dihedral_transform, render_pattern, shift_pattern


class TestArrayDataset:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 16, 16)), np.zeros(3))
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 3, 4, 4)), np.zeros(2))

    def test_subset_and_counts(self):
        data = ArrayDataset(np.zeros((6, 3, 4, 4)), np.array([0, 1, 2, 0, 1, 2]))
        sub = data.subset(np.array([0, 3]))
        assert len(sub) == 2
        assert np.all(sub.labels == 0)
        assert np.all(data.class_counts() == [2, 2, 2])

    def test_concatenate(self):
        a = ArrayDataset(np.zeros((2, 3, 4, 4)), np.array([0, 1]))
        b = ArrayDataset(np.ones((3, 3, 4, 4)), np.array([1, 0, 1]))
        merged = ArrayDataset.concatenate((a, b))
        assert len(merged) == 5
        with pytest.raises(ValueError):
            ArrayDataset.concatenate(())

    def test_fingerprint_is_content_addressed(self):
        """Equal contents share a fingerprint (across instances), any content
        change — images, labels, or a task-boundary concatenation — gets a
        new one; this keys the parallel executor's shard cache."""
        images = np.random.default_rng(0).random((6, 3, 4, 4))
        labels = np.array([0, 1, 2, 0, 1, 2])
        data = ArrayDataset(images, labels)
        twin = ArrayDataset(images.copy(), labels.copy())
        assert data.fingerprint() == twin.fingerprint()
        assert data.fingerprint() is data.fingerprint()  # cached
        assert data.subset(np.array([0, 1])).fingerprint() != data.fingerprint()
        relabeled = ArrayDataset(images, np.array([1, 1, 2, 0, 1, 2]))
        assert relabeled.fingerprint() != data.fingerprint()
        grown = ArrayDataset.concatenate((data, data.subset(np.array([0]))))
        assert grown.fingerprint() != data.fingerprint()

    def test_fingerprint_distinguishes_dtype(self):
        images = np.zeros((2, 3, 4, 4))
        labels = np.zeros(2, dtype=np.int64)
        wide = ArrayDataset(images, labels, dtype=np.float64)
        narrow = ArrayDataset(images, labels, dtype=np.float32)
        assert wide.fingerprint() != narrow.fingerprint()


class TestSpec:
    def test_registered_specs_match_paper_structure(self):
        assert set(available_datasets()) == {"digits_five", "office_caltech", "pacs", "fed_domainnet"}
        assert get_dataset_spec("digits_five").num_domains == 5
        assert get_dataset_spec("digits_five").num_classes == 10
        assert get_dataset_spec("office_caltech").num_domains == 4
        assert get_dataset_spec("pacs").num_classes == 7
        assert get_dataset_spec("fed_domainnet").num_domains == 6

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_dataset_spec("imagenet")

    def test_alternate_order_is_permutation(self):
        for name in available_datasets():
            spec = get_dataset_spec(name)
            alternate = get_alternate_domain_order(name)
            assert sorted(alternate) == sorted(spec.domains)
            assert alternate != spec.domains

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DomainDatasetSpec(name="x", num_classes=1, domains=("a", "b"))
        with pytest.raises(ValueError):
            DomainDatasetSpec(name="x", num_classes=3, domains=("a",))
        with pytest.raises(ValueError):
            DomainDatasetSpec(name="x", num_classes=3, domains=("a", "b"), train_per_domain=2)

    def test_scaled_copy(self, tiny_spec):
        assert tiny_spec.num_classes == 3
        assert tiny_spec.train_per_domain == 24
        assert tiny_spec.domains == get_dataset_spec("office_caltech").domains

    def test_domain_index(self, tiny_spec):
        assert tiny_spec.domain_index("amazon") == 0
        with pytest.raises(KeyError):
            tiny_spec.domain_index("sketch")


class TestGeneration:
    def test_split_shapes_and_labels(self, tiny_spec):
        train = generate_domain_split(tiny_spec, 0, "train")
        assert train.images.shape == (24, 3, 16, 16)
        assert set(np.unique(train.labels)) == {0, 1, 2}
        assert train.images.min() >= 0.0 and train.images.max() <= 1.0

    def test_generation_is_deterministic(self, tiny_spec):
        a = generate_domain_split(tiny_spec, 1, "train")
        b = generate_domain_split(tiny_spec, 1, "train")
        assert np.allclose(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_train_and_test_differ(self, tiny_spec):
        train = generate_domain_split(tiny_spec, 0, "train")
        test = generate_domain_split(tiny_spec, 0, "test")
        assert train.images.shape[0] != test.images.shape[0] or not np.allclose(
            train.images[: len(test)], test.images
        )

    def test_domains_differ_visually(self, tiny_spec):
        d0 = generate_domain_split(tiny_spec, 0, "train").images
        d1 = generate_domain_split(tiny_spec, 1, "train").images
        assert np.abs(d0.mean(axis=0) - d1.mean(axis=0)).mean() > 0.02

    def test_invalid_split_name(self, tiny_spec):
        with pytest.raises(ValueError):
            generate_domain_split(tiny_spec, 0, "validation")

    def test_class_patterns_are_distinct(self, tiny_spec):
        patterns = [class_pattern(tiny_spec, k) for k in range(tiny_spec.num_classes)]
        for i in range(len(patterns)):
            for j in range(i + 1, len(patterns)):
                assert np.abs(patterns[i] - patterns[j]).mean() > 0.05

    def test_domain_style_out_of_range(self, tiny_spec):
        with pytest.raises(IndexError):
            domain_style(tiny_spec, 99)

    def test_within_domain_linear_separability(self, tiny_spec):
        """The class signal must be recoverable within a domain (sanity of the generator)."""
        spec = tiny_spec.scaled(train_per_domain=60, test_per_domain=30)
        train = generate_domain_split(spec, 0, "train")
        test = generate_domain_split(spec, 0, "test")
        x = train.images.reshape(len(train), -1)
        xt = test.images.reshape(len(test), -1)
        x = np.hstack([x, np.ones((len(x), 1))])
        xt = np.hstack([xt, np.ones((len(xt), 1))])
        onehot = np.eye(spec.num_classes)[train.labels]
        weights = np.linalg.solve(x.T @ x + 0.1 * np.eye(x.shape[1]), x.T @ onehot)
        accuracy = ((xt @ weights).argmax(axis=1) == test.labels).mean()
        assert accuracy > 0.7


class TestSyntheticDomainDataset:
    def test_caches_splits(self, tiny_spec):
        dataset = SyntheticDomainDataset(tiny_spec)
        assert dataset.train(0) is dataset.train(0)

    def test_reordered_view(self, tiny_spec):
        dataset = SyntheticDomainDataset(tiny_spec)
        view = dataset.reordered([1, 0, 2, 3])
        assert view.domains[0] == dataset.domains[1]
        assert np.allclose(view.train(0).images, dataset.train(1).images)
        with pytest.raises(ValueError):
            dataset.reordered([0, 0, 1, 2])

    def test_build_dataset_registry(self):
        dataset = build_dataset("pacs")
        assert dataset.num_classes == 7


class TestTransforms:
    def test_dihedral_transforms_are_distinct_and_volume_preserving(self):
        pattern = np.random.default_rng(0).random((8, 8))
        transformed = [dihedral_transform(pattern, k) for k in range(8)]
        for image in transformed:
            assert image.shape == pattern.shape
            assert np.allclose(image.sum(), pattern.sum())
        assert not np.allclose(transformed[0], transformed[1])

    def test_shift_pattern_moves_mass(self):
        pattern = np.zeros((5, 5))
        pattern[2, 2] = 1.0
        shifted = shift_pattern(pattern, 1, -1)
        assert shifted[3, 1] == 1.0
        assert shifted[2, 2] == 0.0

    def test_render_produces_valid_rgb(self, tiny_spec):
        style = domain_style(tiny_spec, 0)
        image = render_pattern(class_pattern(tiny_spec, 0), style, np.random.default_rng(0))
        assert image.shape == (3, 16, 16)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_style_validation(self):
        with pytest.raises(ValueError):
            DomainStyle(name="bad", color_matrix=np.zeros((2, 2)), background=np.zeros(3))
        with pytest.raises(ValueError):
            DomainStyle(name="bad", color_matrix=np.zeros((3, 3)), background=np.zeros(3), orientation=9)


class TestDataLoader:
    def test_batches_cover_dataset(self, tiny_spec):
        data = generate_domain_split(tiny_spec, 0, "train")
        loader = DataLoader(data, batch_size=7, shuffle=False)
        total = sum(len(labels) for _, labels in loader)
        assert total == len(data)
        assert len(loader) == (len(data) + 6) // 7

    def test_normalization_to_unit_range(self, tiny_spec):
        data = generate_domain_split(tiny_spec, 0, "train")
        images, _ = next(iter(DataLoader(data, batch_size=8, shuffle=False)))
        assert images.data.min() >= -1.0 and images.data.max() <= 1.0
        raw, _ = next(iter(DataLoader(data, batch_size=8, shuffle=False, normalize=False)))
        assert raw.data.min() >= 0.0

    def test_shuffle_determinism_with_seed(self, tiny_spec):
        data = generate_domain_split(tiny_spec, 0, "train")
        first = [labels for _, labels in DataLoader(data, batch_size=8, rng=np.random.default_rng(3))]
        second = [labels for _, labels in DataLoader(data, batch_size=8, rng=np.random.default_rng(3))]
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_drop_last(self, tiny_spec):
        data = generate_domain_split(tiny_spec, 0, "train")
        loader = DataLoader(data, batch_size=7, drop_last=True)
        assert all(len(labels) == 7 for _, labels in loader)

    def test_invalid_batch_size(self, tiny_spec):
        with pytest.raises(ValueError):
            DataLoader(generate_domain_split(tiny_spec, 0, "train"), batch_size=0)


class TestTrainTestSplit:
    def test_stratified_split_keeps_all_classes(self, tiny_spec):
        data = generate_domain_split(tiny_spec, 0, "train")
        train, test = train_test_split(data, test_fraction=0.25, rng=np.random.default_rng(0))
        assert len(train) + len(test) == len(data)
        assert set(np.unique(test.labels)) == set(np.unique(data.labels))

    def test_invalid_fraction(self, tiny_spec):
        data = generate_domain_split(tiny_spec, 0, "train")
        with pytest.raises(ValueError):
            train_test_split(data, test_fraction=1.5)

    @given(st.floats(0.1, 0.5))
    @settings(max_examples=10, deadline=None)
    def test_split_sizes_scale_with_fraction(self, fraction):
        labels = np.tile(np.arange(4), 20)
        data = ArrayDataset(np.zeros((80, 3, 4, 4)), labels)
        _, test = train_test_split(data, test_fraction=fraction, rng=np.random.default_rng(0))
        assert abs(len(test) - round(80 * fraction)) <= 4
