"""Tests for the non-iid partitioner and the FINCH clustering substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import FinchResult, finch, first_neighbor_adjacency
from repro.datasets.base import ArrayDataset
from repro.datasets.partition import partition_domain_across_clients, quantity_shift_partition


def _labels(num_classes: int, per_class: int) -> np.ndarray:
    return np.tile(np.arange(num_classes), per_class)


class TestQuantityShiftPartition:
    def test_partitions_cover_all_samples_exactly_once(self):
        labels = _labels(4, 25)
        parts = quantity_shift_partition(labels, 5, np.random.default_rng(0))
        merged = np.sort(np.concatenate(parts))
        assert np.array_equal(merged, np.arange(len(labels)))

    def test_every_client_gets_minimum(self):
        labels = _labels(3, 10)
        parts = quantity_shift_partition(labels, 6, np.random.default_rng(1), min_per_client=3)
        assert all(len(p) >= 3 for p in parts)

    def test_quantity_shift_is_present(self):
        labels = _labels(5, 100)
        parts = quantity_shift_partition(labels, 8, np.random.default_rng(2), concentration=0.4)
        sizes = np.array([len(p) for p in parts])
        assert sizes.max() > 1.5 * sizes.min()

    def test_every_client_sees_every_class_with_enough_data(self):
        labels = _labels(4, 50)
        parts = quantity_shift_partition(labels, 4, np.random.default_rng(3))
        for part in parts:
            assert set(np.unique(labels[part])) == {0, 1, 2, 3}

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            quantity_shift_partition(_labels(2, 2), 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            quantity_shift_partition(np.zeros(3, dtype=int), 5, np.random.default_rng(0))

    def test_determinism_given_seed(self):
        labels = _labels(3, 30)
        a = quantity_shift_partition(labels, 4, np.random.default_rng(7))
        b = quantity_shift_partition(labels, 4, np.random.default_rng(7))
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    @given(
        st.integers(2, 5),
        st.integers(10, 30),
        st.integers(2, 6),
        st.floats(0.3, 3.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_partition_invariants(self, num_classes, per_class, num_clients, concentration):
        labels = _labels(num_classes, per_class)
        parts = quantity_shift_partition(
            labels, num_clients, np.random.default_rng(0), concentration=concentration
        )
        assert len(parts) == num_clients
        merged = np.sort(np.concatenate(parts))
        assert np.array_equal(merged, np.arange(len(labels)))
        assert all(len(p) >= 2 for p in parts)

    @given(
        num_clients=st.integers(2, 8),
        concentration=st.floats(0.05, 3.0),
        min_per_client=st.integers(2, 6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_client_holds_every_class(
        self, num_clients, concentration, min_per_client, seed
    ):
        """The FDIL partition invariant (paper Sec. II): quantity shift skews
        volumes, never class coverage — every client gets >= 1 sample of every
        class whenever each class has at least num_clients samples, even at
        extreme concentrations that starve clients before rebalancing."""
        num_classes = 3
        per_class = num_clients * min_per_client  # feasible for both invariants
        labels = _labels(num_classes, per_class)
        parts = quantity_shift_partition(
            labels,
            num_clients,
            np.random.default_rng(seed),
            concentration=concentration,
            min_per_client=min_per_client,
        )
        merged = np.sort(np.concatenate(parts))
        assert np.array_equal(merged, np.arange(len(labels)))
        for part in parts:
            assert len(part) >= min_per_client
            assert set(np.unique(labels[part])) == set(range(num_classes))

    def test_rebalancing_steals_across_donor_classes(self):
        """Regression: the rebalancer used to pop the donor's tail, so a
        starved client received only the highest class label and the donor
        could lose a whole class.  Stealing now rotates across the donor's
        classes, preserving full class coverage on both sides."""
        num_classes, num_clients = 4, 10
        labels = _labels(num_classes, 20)
        for seed in range(20):
            parts = quantity_shift_partition(
                labels,
                num_clients,
                np.random.default_rng(seed),
                concentration=0.05,  # extreme shift: rebalancing must kick in
                min_per_client=num_classes,
            )
            for part in parts:
                assert set(np.unique(labels[part])) == set(range(num_classes))

    def test_rebalancing_spares_covered_classes_over_singletons(self):
        """Regression: when a donor's surplus is all last-of-class samples,
        stealing must take invariant-exempt singletons (classes with fewer
        samples than clients) before a covered class's last sample — else the
        donor loses coverage of a class every client is guaranteed to hold."""
        covered = np.zeros(3, dtype=np.int64)  # class 0: 3 samples = num_clients
        singletons = np.arange(1, 10, dtype=np.int64)  # 9 single-sample classes
        labels = np.concatenate([covered, singletons])
        for seed in range(50):
            parts = quantity_shift_partition(
                labels, 3, np.random.default_rng(seed), concentration=0.05, min_per_client=4
            )
            assert [len(p) for p in parts] == [4, 4, 4]
            for part in parts:
                assert 0 in labels[part]  # every client keeps the covered class

    def test_single_class_rebalancing_reaches_minimum(self):
        """With one class the coverage rule cannot bind; stealing must still
        top every client up to the minimum."""
        labels = np.zeros(12, dtype=np.int64)
        for seed in range(10):
            parts = quantity_shift_partition(
                labels, 3, np.random.default_rng(seed), concentration=0.05, min_per_client=4
            )
            assert [len(p) for p in parts] == [4, 4, 4]

    def test_infeasible_minimum_raises(self):
        with pytest.raises(ValueError, match="cannot give"):
            quantity_shift_partition(
                _labels(2, 3), 4, np.random.default_rng(0), min_per_client=2
            )

    def test_partition_domain_across_clients(self):
        data = ArrayDataset(np.zeros((40, 3, 4, 4)), _labels(4, 10))
        shards = partition_domain_across_clients(data, [3, 7, 9], np.random.default_rng(0))
        assert set(shards) == {3, 7, 9}
        assert sum(len(s) for s in shards.values()) == 40
        assert partition_domain_across_clients(data, [], np.random.default_rng(0)) == {}


class TestFinch:
    def test_adjacency_is_symmetric_with_unit_diagonal(self):
        features = np.random.default_rng(0).standard_normal((12, 6))
        adjacency = first_neighbor_adjacency(features)
        assert np.array_equal(adjacency, adjacency.T)
        assert np.all(np.diag(adjacency) == 1)

    def test_two_well_separated_blobs_never_share_a_cluster(self):
        rng = np.random.default_rng(1)
        blob_a = rng.normal(0.0, 0.05, size=(15, 4)) + np.array([5, 0, 0, 0])
        blob_b = rng.normal(0.0, 0.05, size=(15, 4)) + np.array([-5, 0, 0, 0])
        result = finch(np.vstack([blob_a, blob_b]))
        # Every partition level must keep the two blobs in disjoint clusters
        # (cluster purity); the finest level may split a blob into several
        # clusters, which the recursion then merges.
        for labels in result.partitions:
            assert set(labels[:15]).isdisjoint(set(labels[15:]))
        assert result.coarsest.max() + 1 <= result.finest.max() + 1

    def test_num_clusters_decreases_over_levels(self):
        features = np.random.default_rng(2).standard_normal((40, 5))
        result = finch(features)
        assert result.num_clusters == sorted(result.num_clusters, reverse=True)
        assert result.num_clusters[0] < 40

    def test_centroids_shape(self):
        features = np.random.default_rng(3).standard_normal((20, 6))
        result = finch(features)
        assert result.centroids.shape == (result.num_clusters[0], 6)

    def test_single_and_empty_inputs(self):
        single = finch(np.ones((1, 4)))
        assert single.num_clusters == [1]
        empty = finch(np.zeros((0, 4)))
        assert empty.partitions == []
        with pytest.raises(ValueError):
            empty.finest
        with pytest.raises(ValueError):
            finch(np.zeros(5))

    def test_partition_labels_are_contiguous(self):
        features = np.random.default_rng(4).standard_normal((25, 3))
        labels = finch(features).finest
        assert set(labels) == set(range(labels.max() + 1))

    @given(
        st.integers(4, 24),
        st.integers(2, 6),
    )
    @settings(max_examples=20, deadline=None)
    def test_every_sample_gets_a_label(self, n, dim):
        features = np.random.default_rng(n * dim).standard_normal((n, dim))
        result = finch(features)
        assert result.finest.shape == (n,)
        assert result.finest.min() >= 0

    def test_domain_structured_prompts_never_mix_domains(self):
        """Prompts from different 'domains' must never share a cluster (the RefFiL use-case)."""
        rng = np.random.default_rng(5)
        domain_directions = np.eye(3)
        prompts = []
        for domain in range(3):
            prompts.append(domain_directions[domain] * 3 + rng.normal(0, 0.05, size=(8, 3)))
        result = finch(np.vstack(prompts))
        labels = result.finest
        blocks = [set(labels[d * 8 : (d + 1) * 8]) for d in range(3)]
        for i in range(3):
            for j in range(i + 1, 3):
                assert blocks[i].isdisjoint(blocks[j])
