"""Tests for the compile-time plan optimizer (repro.autograd.planopt).

The contract under test is absolute: optimized replay is *bit-for-bit*
identical to unoptimized replay (and hence to eager) — losses, every leaf
gradient, dtype for dtype — while dropping dead records, fusing elementwise
chains and serving intermediates plus gradient accumulators from reused
buffers.  Anything weaker would change whole-run hashes and the run-cache
fold of the ``plan_optimize`` knob would be wrong.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, functional as F
from repro.autograd.tape import (
    Plan,
    PlanCache,
    Tape,
    _FINGERPRINTS,
    get_plan_optimize,
    model_fingerprint,
    plan_optimize_mode,
    set_plan_optimize,
    tracing,
)
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter

RNG = np.random.default_rng(7)


def _compile(build, optimize):
    """Trace ``build(tape) -> (loss, slots_of_interest)`` into a Plan."""
    tape = Tape()
    with tracing(tape):
        loss, extras = build(tape)
    return Plan(tape, loss, optimize=optimize), extras


class TestOptimizeKnob:
    def test_default_on_and_mode_restores(self):
        assert get_plan_optimize() is True
        with plan_optimize_mode(False):
            assert get_plan_optimize() is False
            with plan_optimize_mode(True):
                assert get_plan_optimize() is True
            assert get_plan_optimize() is False
        assert get_plan_optimize() is True

    def test_set_returns_previous(self):
        previous = set_plan_optimize(False)
        try:
            assert previous is True
            assert get_plan_optimize() is False
        finally:
            set_plan_optimize(previous)

    def test_plan_respects_explicit_override(self):
        w = Parameter(RNG.standard_normal((3, 3)))

        def build(tape):
            x = Tensor(RNG.standard_normal((2, 3)))
            tape.mark_input("x", x)
            return ((x @ w) ** 2).sum(), None

        with plan_optimize_mode(False):
            plan_off, _ = _compile(build, optimize=None)
            plan_forced, _ = _compile(build, optimize=True)
        assert plan_off.opt is None
        assert plan_forced.opt is not None


class TestDeadCodeElimination:
    def test_metrics_subgraph_dropped_and_parity_kept(self):
        w = Parameter(RNG.standard_normal((4, 4)))
        x_np = RNG.standard_normal((4, 4))

        def build(tape):
            x = Tensor(x_np)
            tape.mark_input("x", x)
            h = F.tanh(x @ w)
            # Metrics-only subgraph: recorded, never reaches the loss.
            _accuracy_like = (h * 3.0).sum()
            loss = (h * h).mean()
            return loss, None

        plan_opt, _ = _compile(build, optimize=True)
        plan_ref, _ = _compile(build, optimize=False)
        assert plan_opt.opt is not None
        assert len(plan_opt.opt.dropped) >= 2  # the mul-by-3 and its sum
        # Dropped records are exactly the ones outside the loss's ancestry.
        loss_ancestors = set(plan_opt.order)
        for i in plan_opt.opt.dropped:
            out = plan_opt.records[i].out_slot
            assert out is not None and out not in loss_ancestors

        x2 = RNG.standard_normal((4, 4))
        loss_a, grads_a = plan_opt.execute({"x": x2})
        loss_b, grads_b = plan_ref.execute({"x": x2})
        assert np.array_equal(loss_a, loss_b)
        assert set(grads_a) == set(grads_b)
        for slot in grads_a:
            assert grads_a[slot].dtype == grads_b[slot].dtype
            assert np.array_equal(grads_a[slot], grads_b[slot])

    def test_nothing_dropped_when_everything_feeds_loss(self):
        w = Parameter(RNG.standard_normal((3, 3)))

        def build(tape):
            x = Tensor(RNG.standard_normal((3, 3)))
            tape.mark_input("x", x)
            return (F.sigmoid(x @ w)).sum(), None

        plan, _ = _compile(build, optimize=True)
        assert plan.opt is not None
        assert plan.opt.dropped == ()


class TestLivenessAndFusion:
    def _diamond(self, optimize):
        rng = np.random.default_rng(11)
        w = Parameter(rng.standard_normal((4, 4)))
        x_np = rng.standard_normal((4, 4))
        slots = {}

        def build(tape):
            x = Tensor(x_np)
            tape.mark_input("x", x)
            a = x @ w       # not fusable (matmul), two consumers below
            b = F.tanh(a)   # single-consumer elementwise ...
            c = a * b       # ... adjacent: fuses with b
            loss = c.sum()
            slots.update(a=tape._slots[id(a)], b=tape._slots[id(b)], c=tape._slots[id(c)])
            return loss, None

        plan, _ = _compile(build, optimize=optimize)
        return plan, slots

    def test_last_use_indices(self):
        plan, slots = self._diamond(optimize=True)
        opt = plan.opt
        assert opt is not None
        # Program: [matmul a], [fused tanh;mul -> c], [sum -> loss].
        assert opt.chains == ((1, 2),)
        assert len(opt.program) == 3
        assert opt.last_read[slots["a"]] == 1  # read by both members of the chain
        assert opt.last_read[slots["c"]] == 2  # read by the final sum
        assert slots["b"] not in opt.last_read  # chain-interior: never hits env
        # The fused instruction releases `a` (its last reader); the sum
        # releases `c`.
        assert slots["a"] in opt.program[1].releases
        assert slots["c"] in opt.program[2].releases

    def test_fused_chain_parity_including_grads(self):
        plan_opt, slots = self._diamond(optimize=True)
        plan_ref, _ = self._diamond(optimize=False)
        x2 = RNG.standard_normal((4, 4))
        loss_a, grads_a = plan_opt.execute({"x": x2})
        loss_b, grads_b = plan_ref.execute({"x": x2})
        assert np.array_equal(loss_a, loss_b)
        for slot in grads_b:
            assert np.array_equal(grads_a[slot], grads_b[slot])

    def test_env_entries_released_after_execute(self):
        plan, slots = self._diamond(optimize=True)
        plan.execute({"x": RNG.standard_normal((4, 4))})
        env = plan.opt._env
        assert env[slots["a"]] is None
        assert env[slots["c"]] is None
        assert env[plan.loss_slot] is None


class TestBufferArena:
    def _aliased_shapes(self, optimize):
        """Two same-shaped intermediates with disjoint lifetimes: the arena
        must serve the second from the first's buffer without corrupting
        either the forward values or the gradients."""
        rng = np.random.default_rng(13)
        w = Parameter(rng.standard_normal((4, 4)))
        x_np = rng.standard_normal((4, 4))
        slots = {}

        def build(tape):
            x = Tensor(x_np)
            tape.mark_input("x", x)
            a = x + w       # arena-served; dead after the sum below
            s = a.sum()
            b = x - w       # same shape/dtype as `a`, allocated later
            loss = b.sum() * s
            slots.update(a=tape._slots[id(a)], b=tape._slots[id(b)])
            return loss, None

        plan, _ = _compile(build, optimize=optimize)
        return plan, slots

    def test_aliased_shape_reuses_buffer(self):
        plan, slots = self._aliased_shapes(optimize=True)
        opt = plan.opt
        assert opt is not None
        buf_a = opt.buffer_for[slots["a"]]
        buf_b = opt.buffer_for[slots["b"]]
        assert buf_a is buf_b  # liveness proved `a` dead before `b`'s write

    def test_aliased_shape_parity(self):
        plan_opt, _ = self._aliased_shapes(optimize=True)
        plan_ref, _ = self._aliased_shapes(optimize=False)
        x2 = RNG.standard_normal((4, 4))
        loss_a, grads_a = plan_opt.execute({"x": x2})
        loss_b, grads_b = plan_ref.execute({"x": x2})
        assert np.array_equal(loss_a, loss_b)
        for slot in grads_b:
            assert np.array_equal(grads_a[slot], grads_b[slot])

    def test_retained_activations_never_pooled(self):
        # exp stashes its *output* for the vjp (ctx.out), so its buffer must
        # never be handed to a later record even when liveness says the env
        # entry is dead.
        rng = np.random.default_rng(17)
        w = Parameter(rng.standard_normal((4, 4)))
        x_np = rng.standard_normal((4, 4))

        def build(tape):
            x = Tensor(x_np)
            tape.mark_input("x", x)
            e = (x * 0.1).exp()
            s = e.sum()
            b = x - w
            return b.sum() * s, None

        plan, _ = _compile(build, optimize=True)
        plan_ref, _ = _compile(build, optimize=False)
        x2 = RNG.standard_normal((4, 4))
        loss_a, grads_a = plan.execute({"x": x2})
        loss_b, grads_b = plan_ref.execute({"x": x2})
        assert np.array_equal(loss_a, loss_b)
        for slot in grads_b:
            assert np.array_equal(grads_a[slot], grads_b[slot])

    def test_grad_buffer_layout_mirrors_unoptimized(self):
        # Matmul weight vjps (``a.T @ g``) come out F-contiguous, and
        # unoptimized replay hands them back that way (``astype`` keeps
        # order='K').  The grad buffers must mirror that layout: reductions
        # downstream of the returned grads — the optimizer's global clip
        # norm — sum in *memory* order, so a C-ordered buffer over the same
        # bits shifts the norm by an ulp and, once clipping fires, the
        # whole run.
        w = Parameter(RNG.standard_normal((8, 8)))
        x_np = RNG.standard_normal((8, 8))

        def build(tape):
            x = Tensor(x_np)
            tape.mark_input("x", x)
            return (x @ w).sum(), None

        plan_opt, _ = _compile(build, optimize=True)
        plan_ref, _ = _compile(build, optimize=False)
        x2 = RNG.standard_normal((8, 8))
        for _ in range(3):  # steady state: reused buffers, not first-alloc
            _, grads_a = plan_opt.execute({"x": x2})
            _, grads_b = plan_ref.execute({"x": x2})
        for slot in grads_b:
            a, b = grads_a[slot], grads_b[slot]
            assert np.array_equal(a, b)
            assert a.flags.c_contiguous == b.flags.c_contiguous
            assert a.flags.f_contiguous == b.flags.f_contiguous
            # The observable contract: the same reduction over the same bits.
            assert repr(np.sum(a**2)) == repr(np.sum(b**2))

    def test_steady_state_reuses_forward_and_grad_buffers(self):
        w = Parameter(RNG.standard_normal((4, 4)))

        def build(tape):
            x = Tensor(RNG.standard_normal((4, 4)))
            tape.mark_input("x", x)
            return (F.tanh(x @ w + w) ** 2).sum(), None

        plan, _ = _compile(build, optimize=True)
        opt = plan.opt
        assert opt is not None and opt.buffer_for
        x2 = RNG.standard_normal((4, 4))
        _, grads_first = plan.execute({"x": x2})
        first = {slot: g for slot, g in grads_first.items()}
        _, grads_second = plan.execute({"x": x2})
        # Same accumulator objects step over step (the satellite fix), with
        # values identical to a fresh unoptimized replay.
        for slot, g in grads_second.items():
            assert g is first[slot]
        plan_ref, _ = _compile(build, optimize=False)
        _, grads_ref = plan_ref.execute({"x": x2})
        for slot in grads_ref:
            assert np.array_equal(grads_second[slot], grads_ref[slot])


# Random-program property: the same op pool the tape parity test uses, plus a
# dead metrics branch, checked optimized-vs-unoptimized-vs-eager bitwise.
_PROGRAM_OPS = {
    "matmul0": lambda h, p0, p1: h @ p0,
    "add1": lambda h, p0, p1: h + p1,
    "mul0": lambda h, p0, p1: h * p0,
    "sub1": lambda h, p0, p1: h - p1,
    "div1": lambda h, p0, p1: h / (p1 * p1 + 1.0),
    "tanh": lambda h, p0, p1: F.tanh(h),
    "sigmoid": lambda h, p0, p1: F.sigmoid(h),
    "relu": lambda h, p0, p1: F.relu(h),
    "gelu": lambda h, p0, p1: F.gelu(h),
    "exp": lambda h, p0, p1: (h * 0.25).exp(),
    "scale": lambda h, p0, p1: h * 0.5,
    "square": lambda h, p0, p1: h * h,
    "norm": lambda h, p0, p1: F.l2_normalize(h),
    "softmax": lambda h, p0, p1: F.softmax(h),
}

# Ops safe under the lockstep batch rules (no matmul-on-batched-weight cases
# beyond what the pad rule covers; all appear in real traced models).
_BATCHED_OPS = ["add1", "mul0", "sub1", "tanh", "sigmoid", "relu", "scale", "square"]


def _run_program(codes, x, p0, p1, dead):
    h = x
    for code in codes:
        h = _PROGRAM_OPS[code](h, p0, p1)
    if dead:
        _ = (h * 3.0).sum()  # metrics-only: DCE fodder
    return (h * h).mean()


class TestRandomProgramProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        codes=st.lists(st.sampled_from(sorted(_PROGRAM_OPS)), min_size=1, max_size=8),
        dead=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_optimized_replay_bitwise_equals_unoptimized_and_eager(
        self, codes, dead, seed
    ):
        rng = np.random.default_rng(seed)
        p0 = Parameter(rng.standard_normal((4, 4)))
        p1 = Parameter(rng.standard_normal((4, 4)))
        x_np = rng.standard_normal((4, 4))

        tape = Tape()
        with tracing(tape):
            x = Tensor(x_np)
            tape.mark_input("x", x)
            loss = _run_program(codes, x, p0, p1, dead)
        plan_opt = Plan(tape, loss, optimize=True)
        plan_ref = Plan(tape, loss, optimize=False)
        assert plan_opt.opt is not None

        x2 = rng.standard_normal((4, 4))
        loss_a, grads_a = plan_opt.execute({"x": x2})
        loss_b, grads_b = plan_ref.execute({"x": x2})
        assert np.array_equal(loss_a, loss_b)
        assert set(grads_a) == set(grads_b)
        for slot in grads_b:
            assert grads_a[slot].dtype == grads_b[slot].dtype
            assert np.array_equal(grads_a[slot], grads_b[slot])

        p0.zero_grad(), p1.zero_grad()
        eager_loss = _run_program(codes, Tensor(x2), p0, p1, dead)
        if eager_loss.requires_grad:
            eager_loss.backward()
        assert np.array_equal(loss_a, eager_loss.data)
        for param in (p0, p1):
            replayed = plan_opt.grad_for(param, grads_a)
            if param.grad is None:
                assert replayed is None
            else:
                assert np.array_equal(replayed, param.grad)

    @settings(max_examples=25, deadline=None)
    @given(
        codes=st.lists(st.sampled_from(_BATCHED_OPS), min_size=1, max_size=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_optimized_batched_replay_bitwise_equals_unoptimized(self, codes, seed):
        rng = np.random.default_rng(seed)
        k = 3
        p0 = Parameter(rng.standard_normal((4, 4)))
        p1 = Parameter(rng.standard_normal((4, 4)))
        x_np = rng.standard_normal((4, 4))

        tape = Tape()
        with tracing(tape):
            x = Tensor(x_np)
            tape.mark_input("x", x)
            loss = _run_program(codes, x @ p0, p0, p1, dead=False)
        plan_opt = Plan(tape, loss, optimize=True)
        plan_ref = Plan(tape, loss, optimize=False)
        assert plan_opt.opt is not None

        # A program may never touch p1, in which case it has no leaf slot.
        slots = [slot for slot, _ in plan_opt.param_leaves]
        plan_opt.prepare_batched(slots)
        plan_ref.prepare_batched(slots)
        stacks = {
            slot: rng.standard_normal((k,) + p.data.shape)
            for slot, p in plan_opt.param_leaves
        }
        x_stack = rng.standard_normal((k, 4, 4))
        loss_a, grads_a = plan_opt.execute_batched(
            k, {"x": x_stack}, {slot: s.copy() for slot, s in stacks.items()}
        )
        loss_b, grads_b = plan_ref.execute_batched(
            k, {"x": x_stack}, {slot: s.copy() for slot, s in stacks.items()}
        )
        assert np.array_equal(loss_a, loss_b)
        assert set(grads_a) == set(grads_b)
        for slot in grads_b:
            assert np.array_equal(grads_a[slot], grads_b[slot])


class TestPlanCacheLRU:
    def test_eviction_order_and_counters(self):
        cache = PlanCache(max_plans=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh: `b` becomes LRU
        cache.put("c", 3)  # evicts `b`
        assert cache.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2
        assert (cache.hits, cache.misses) == (3, 1)

    def test_put_refreshes_recency(self):
        cache = PlanCache(max_plans=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-put refreshes `a`
        cache.put("c", 3)  # evicts `b`, not `a`
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            PlanCache(max_plans=0)


class TestFingerprintMemo:
    def _model(self):
        return Linear(3, 2, rng=np.random.default_rng(0))

    def test_memo_hit_returns_same_tuple(self):
        model = self._model()
        first = model_fingerprint(model)
        assert model_fingerprint(model) is first  # served from the memo

    def test_in_place_update_keeps_memo_valid(self):
        model = self._model()
        first = model_fingerprint(model)
        model.weight.data[...] += 1.0  # the SGD-step case: same storage
        assert model_fingerprint(model) is first

    def test_trainability_flip_invalidates(self):
        model = self._model()
        before = model_fingerprint(model)
        model.weight.requires_grad = False
        after = model_fingerprint(model)
        assert after != before

    def test_data_rebind_invalidates_probe(self):
        model = self._model()
        before = model_fingerprint(model)
        model.weight.data = model.weight.data.astype(np.float32)
        after = model_fingerprint(model)
        assert after != before  # dtype row changed, rebuilt not served stale

    def test_structure_change_invalidates(self):
        model = self._model()
        before = model_fingerprint(model)
        model.extra = Linear(2, 2, rng=np.random.default_rng(1))
        after = model_fingerprint(model)
        assert len(after) == len(before) + 2  # extra weight + bias rows

    def test_collected_model_evicted_from_memo(self):
        model = self._model()
        model_fingerprint(model)
        key = id(model)
        assert key in _FINGERPRINTS
        del model
        gc.collect()
        assert key not in _FINGERPRINTS

    def test_non_module_falls_back(self):
        class Bag:
            def __init__(self):
                self._p = Parameter(np.ones((2, 2)))

            def named_parameters(self):
                yield "p", self._p

        assert model_fingerprint(Bag()) == (("p", (2, 2), "float64", True),)
