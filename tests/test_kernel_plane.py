"""End-to-end tests of the kernel plane knob: eager / tape / batched.

The contracts, from strongest to weakest:

* ``kernel="tape"`` is *hash-identical* to eager — every plan's first replay
  is verified bit-for-bit against the eager step and any divergence falls
  back, so the trained numbers cannot move.
* ``kernel="batched"`` reorders float accumulation (stacked matmuls,
  vectorized clip norms) and matches eager to tolerance; clients the
  lockstep engine cannot vectorize (custom ``local_update``, singleton
  groups) fall back to the exact serial path.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines.registry import build_method
from repro.continual import DomainIncrementalScenario
from repro.datasets import SyntheticDomainDataset
from repro.federated import FederatedConfig, FederatedDomainIncrementalSimulation, build_executor
from repro.federated.execution import BatchedExecutor, ParallelExecutor, SerialExecutor
from repro.federated.simulation import SimulationResult


def _simulate(tiny_spec, tiny_backbone_config, config, method_name="finetune"):
    scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
    method = build_method(method_name, tiny_backbone_config, num_tasks=scenario.num_tasks)
    simulation = FederatedDomainIncrementalSimulation(scenario, method, config)
    with simulation:
        result = simulation.run()
    return result, simulation


def _assert_identical(a: SimulationResult, b: SimulationResult) -> None:
    np.testing.assert_array_equal(a.metrics.matrix, b.metrics.matrix)
    assert a.round_losses == b.round_losses


class TestTapeKernelParity:
    """tape must be bit-for-bit: same accuracies, same round losses."""

    @pytest.mark.parametrize("method_name", ["finetune", "fedlwf"])
    def test_tape_identical_to_eager(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, method_name
    ):
        eager, _ = _simulate(
            tiny_spec, tiny_backbone_config, tiny_federated_config, method_name
        )
        tape, _ = _simulate(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, kernel="tape"),
            method_name,
        )
        _assert_identical(eager, tape)

    def test_tape_identical_under_parallel_executor(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        # The kernel knob must reach worker processes through the train message.
        eager, _ = _simulate(tiny_spec, tiny_backbone_config, tiny_federated_config)
        tape_parallel, _ = _simulate(
            tiny_spec,
            tiny_backbone_config,
            replace(
                tiny_federated_config, kernel="tape", executor="parallel", num_workers=2
            ),
        )
        _assert_identical(eager, tape_parallel)

    def test_tape_identical_at_float32(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        eager, _ = _simulate(
            tiny_spec, tiny_backbone_config, replace(tiny_federated_config, dtype="float32")
        )
        tape, _ = _simulate(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, dtype="float32", kernel="tape"),
        )
        _assert_identical(eager, tape)


def _widened(config):
    """A population where several selected clients share a shard size, so
    lockstep groups of size >= 2 actually form (singletons fall back)."""
    return replace(
        config,
        clients_per_round=3,
        increment=replace(config.increment, initial_clients=6),
    )


class TestBatchedKernelParity:
    def test_batched_matches_eager_within_tolerance(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        wide = _widened(tiny_federated_config)
        eager, _ = _simulate(tiny_spec, tiny_backbone_config, wide)
        batched, simulation = _simulate(
            tiny_spec,
            tiny_backbone_config,
            replace(wide, kernel="batched"),
        )
        np.testing.assert_allclose(
            batched.metrics.matrix, eager.metrics.matrix, atol=1e-6
        )
        for a, b in zip(eager.round_losses, batched.round_losses):
            assert a == pytest.approx(b, abs=1e-9)
        telemetry = simulation.executor.telemetry
        assert telemetry.lockstep_clients > 0
        assert telemetry.plans_compiled > 0

    def test_batched_fedlwf_with_teacher(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        # Task 1 carries a frozen teacher (unnamed trainable leaves in the
        # traced graph) — the lockstep engine must still vectorize it.
        wide = _widened(tiny_federated_config)
        eager, _ = _simulate(tiny_spec, tiny_backbone_config, wide, "fedlwf")
        batched, simulation = _simulate(
            tiny_spec,
            tiny_backbone_config,
            replace(wide, kernel="batched"),
            "fedlwf",
        )
        np.testing.assert_allclose(
            batched.metrics.matrix, eager.metrics.matrix, atol=1e-6
        )
        assert simulation.executor.telemetry.lockstep_clients > 0

    def test_batched_refil_falls_back_exactly(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        # refil overrides local_update, so every client takes the serial
        # fallback — which is the *exact* eager path, not a tolerance match.
        eager, _ = _simulate(
            tiny_spec, tiny_backbone_config, tiny_federated_config, "refil"
        )
        batched, simulation = _simulate(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, kernel="batched"),
            "refil",
        )
        _assert_identical(eager, batched)
        telemetry = simulation.executor.telemetry
        assert telemetry.lockstep_clients == 0
        assert telemetry.plans_compiled == 0


class TestPlanOptimizeParity:
    """The plan_optimize knob may never move a number: optimized tape runs are
    hash-identical to unoptimized ones (and to eager), under every executor
    and dtype; optimized lockstep replay is bit-for-bit with unoptimized
    lockstep replay."""

    def test_tape_optimized_identical_to_unoptimized_and_eager(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        eager, _ = _simulate(tiny_spec, tiny_backbone_config, tiny_federated_config)
        tape_on, _ = _simulate(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, kernel="tape", plan_optimize=True),
        )
        tape_off, _ = _simulate(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, kernel="tape", plan_optimize=False),
        )
        _assert_identical(tape_on, tape_off)
        _assert_identical(tape_on, eager)

    def test_tape_optimized_identical_at_float32(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        on, _ = _simulate(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, dtype="float32", kernel="tape"),
        )
        off, _ = _simulate(
            tiny_spec,
            tiny_backbone_config,
            replace(
                tiny_federated_config,
                dtype="float32",
                kernel="tape",
                plan_optimize=False,
            ),
        )
        _assert_identical(on, off)

    def test_tape_optimized_identical_under_parallel_executor(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        # The plan_optimize knob must reach worker processes with every chunk.
        on, _ = _simulate(
            tiny_spec,
            tiny_backbone_config,
            replace(
                tiny_federated_config, kernel="tape", executor="parallel", num_workers=2
            ),
        )
        off, _ = _simulate(
            tiny_spec,
            tiny_backbone_config,
            replace(
                tiny_federated_config,
                kernel="tape",
                executor="parallel",
                num_workers=2,
                plan_optimize=False,
            ),
        )
        _assert_identical(on, off)

    def test_batched_optimized_identical_to_unoptimized(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        # Optimized batched replay runs the same ops in the same order with
        # the same stacked operands, so it is exactly equal (not tolerance).
        wide = _widened(tiny_federated_config)
        on, sim_on = _simulate(
            tiny_spec, tiny_backbone_config, replace(wide, kernel="batched")
        )
        off, sim_off = _simulate(
            tiny_spec,
            tiny_backbone_config,
            replace(wide, kernel="batched", plan_optimize=False),
        )
        _assert_identical(on, off)
        telemetry = sim_on.executor.telemetry
        assert telemetry.lockstep_clients > 0
        assert telemetry.plan_cache_misses == telemetry.plans_compiled
        assert telemetry.plan_cache_hits + telemetry.plan_cache_misses > 0
        assert telemetry.plan_cache_evictions == 0
        assert (
            sim_off.executor.telemetry.lockstep_clients == telemetry.lockstep_clients
        )


class TestKernelConfigSurface:
    def test_config_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            FederatedConfig(kernel="jit")

    def test_config_rejects_batched_with_parallel_executor(self):
        with pytest.raises(ValueError, match="serial"):
            FederatedConfig(kernel="batched", executor="parallel", num_workers=2)

    def test_build_executor_kernel_routing(self):
        assert isinstance(build_executor("serial", kernel="batched"), BatchedExecutor)
        assert isinstance(build_executor("serial", kernel="tape"), SerialExecutor)
        parallel = build_executor("parallel", 2, kernel="tape")
        try:
            assert isinstance(parallel, ParallelExecutor)
            assert parallel.kernel == "tape"
        finally:
            parallel.close()
        with pytest.raises(ValueError):
            build_executor("parallel", 2, kernel="batched")
        with pytest.raises(ValueError):
            build_executor("serial", kernel="jit")

    def test_scaled_config_threads_kernel(self):
        from repro.experiments.config import scaled_config

        config = scaled_config("office_caltech", kernel="batched")
        assert config.federated.kernel == "batched"

    def test_scaled_config_threads_plan_optimize(self):
        from repro.experiments.config import scaled_config

        assert scaled_config("office_caltech").federated.plan_optimize is True
        config = scaled_config("office_caltech", plan_optimize=False)
        assert config.federated.plan_optimize is False

    def test_build_executor_threads_plan_optimize(self):
        parallel = build_executor("parallel", 2, kernel="tape", plan_optimize=False)
        try:
            assert parallel.plan_optimize is False
        finally:
            parallel.close()

    def test_runner_folds_tape_keeps_batched(self):
        from repro.experiments.runner import _normalize_execution_knobs

        base = FederatedConfig()
        assert _normalize_execution_knobs(replace(base, kernel="tape")).kernel == "eager"
        assert _normalize_execution_knobs(replace(base, kernel="eager")).kernel == "eager"
        assert (
            _normalize_execution_knobs(replace(base, kernel="batched")).kernel == "batched"
        )

    def test_runner_folds_plan_optimize_under_every_kernel(self):
        # Optimized replay is bit-for-bit with unoptimized, so the knob can
        # never change a run's numbers and always folds out of the cache key.
        from repro.experiments.runner import _normalize_execution_knobs

        base = FederatedConfig()
        for kernel in ("eager", "tape", "batched"):
            folded = _normalize_execution_knobs(
                replace(base, kernel=kernel, plan_optimize=False)
            )
            assert folded.plan_optimize is True
