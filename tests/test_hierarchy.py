"""Hierarchy plane: virtual client population + tree aggregation.

Covers the two halves of the plane and their cross-layer contracts:

* the lazy sampler (draw-for-draw reference, O(count) semantics),
* the virtual-client plane (bit-for-bit shard parity with the eager data
  plane, LRU determinism, fleet recipes),
* the tree reduce backend (float-tolerance agreement with flat FedAvg for
  any fan-out and cohort, edge-frame ledger accounting, edge faults),
* the configuration surface (validation, checkpoint fingerprints, run-cache
  folding), and
* full-simulation parity: a schedule-mode virtual run reproduces the eager
  run hash-for-hash across sync/async/buffered modes, while fleet mode
  trains a 100k-scale population in O(cohort) state.
"""

from __future__ import annotations

import os
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.autograd.tensor import get_default_dtype
from repro.baselines import build_method
from repro.continual import DomainIncrementalScenario
from repro.datasets import SyntheticDomainDataset
from repro.datasets.partition import (
    partition_domain_across_clients,
    partition_indices_for_clients,
)
from repro.federated import (
    CheckpointMismatchError,
    FaultInjector,
    FaultSpec,
    FederatedDomainIncrementalSimulation,
    FlatReduceBackend,
    NoAvailableClientsError,
    ProfileCache,
    TreeReduceBackend,
    VirtualClientPlane,
    VirtualClientSpec,
    build_profile,
    build_reduce_backend,
    config_fingerprint,
    fedavg,
    sample_clients_lazy,
    simulation_state_hash,
)
from repro.federated.communication import CommunicationLedger, build_codec
from repro.federated.config import FederatedConfig
from repro.federated.increment import ClientGroup
from repro.utils.rng import spawn_rng


def _build(tiny_spec, tiny_backbone_config, config, num_tasks=2):
    scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=num_tasks)
    method = build_method("finetune", tiny_backbone_config, num_tasks=scenario.num_tasks)
    return FederatedDomainIncrementalSimulation(scenario, method, config)


def _run(tiny_spec, tiny_backbone_config, config, num_tasks=2):
    simulation = _build(tiny_spec, tiny_backbone_config, config, num_tasks=num_tasks)
    return simulation, simulation.run()


# --------------------------------------------------------------------------- #
# Lazy sampling
# --------------------------------------------------------------------------- #
def _reference_lazy_sample(population, count, rng, eligible=None):
    """The documented probe program of ``sample_clients_lazy``, re-derived."""
    selected = set()
    while len(selected) < count:
        candidate = int(rng.integers(population))
        if candidate in selected:
            continue
        if eligible is not None and not eligible(candidate):
            continue
        selected.add(candidate)
    return sorted(selected)


class TestSampleClientsLazy:
    @pytest.mark.parametrize("population,count", [(5, 2), (10, 3), (37, 5), (100, 1)])
    def test_matches_reference_draw_for_draw(self, population, count):
        # Identical generator state in, identical probe sequence out: the
        # sampler is a pure function of the rng — the regression contract the
        # fleet selection trace depends on.
        chosen = sample_clients_lazy(population, count, np.random.default_rng(42))
        expected = _reference_lazy_sample(population, count, np.random.default_rng(42))
        assert chosen == expected

    def test_small_population_golden_draws(self):
        # A pinned golden draw: numpy generator semantics changing under us
        # (or a sampler rewrite changing the probe program) must fail loudly,
        # because every recorded fleet run's cohorts depend on this sequence.
        assert sample_clients_lazy(10, 3, np.random.default_rng(0)) == [5, 6, 8]
        assert sample_clients_lazy(1000, 4, np.random.default_rng(7)) == [625, 684, 897, 944]

    def test_count_reaching_population_returns_filtered_range(self):
        rng = np.random.default_rng(0)
        assert sample_clients_lazy(4, 4, rng) == [0, 1, 2, 3]
        assert sample_clients_lazy(4, 9, rng, exclude={2}) == [0, 1, 3]

    def test_exclude_and_availability_are_honoured(self):
        chosen = sample_clients_lazy(
            50, 5, np.random.default_rng(3), available=lambda cid: cid % 2 == 0, exclude={0, 2}
        )
        assert len(chosen) == 5 and len(set(chosen)) == 5
        assert all(cid % 2 == 0 and cid not in {0, 2} for cid in chosen)

    def test_exhaustion_raises(self):
        with pytest.raises(NoAvailableClientsError):
            sample_clients_lazy(
                100, 3, np.random.default_rng(0), available=lambda cid: False, max_probes=64
            )
        with pytest.raises(NoAvailableClientsError):
            sample_clients_lazy(3, 3, np.random.default_rng(0), exclude={0, 1, 2})

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_clients_lazy(10, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sample_clients_lazy(0, 1, np.random.default_rng(0))

    @given(population=st.integers(2, 200), count=st.integers(1, 8), seed=st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_property_distinct_sorted_in_range(self, population, count, seed):
        chosen = sample_clients_lazy(population, count, np.random.default_rng(seed))
        assert chosen == sorted(set(chosen))
        assert len(chosen) == min(count, population)
        assert all(0 <= cid < population for cid in chosen)


# --------------------------------------------------------------------------- #
# Virtual shards: bit-for-bit with the eager partition
# --------------------------------------------------------------------------- #
class TestVirtualShards:
    @given(seed=st.integers(0, 2**16), concentration=st.sampled_from([0.3, 1.0, 5.0]))
    @settings(
        max_examples=10,
        deadline=None,
        # The spec fixture is a frozen value object; sharing it across
        # generated examples is safe.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_index_partition_matches_eager_shards(self, tiny_spec, seed, concentration):
        # The index-level half performs the same draws as the eager shard
        # partition, so subset-by-indices reproduces every shard exactly.
        dataset = SyntheticDomainDataset(tiny_spec).train(0)
        clients = [3, 1, 7, 4]
        eager = partition_domain_across_clients(
            dataset, clients, spawn_rng(seed, "partition", 0), concentration
        )
        index_map = partition_indices_for_clients(
            dataset.labels, clients, spawn_rng(seed, "partition", 0), concentration
        )
        assert set(eager) == set(index_map)
        for client_id, indices in index_map.items():
            lazy = dataset.subset(indices)
            np.testing.assert_array_equal(lazy.images, eager[client_id].images)
            np.testing.assert_array_equal(lazy.labels, eager[client_id].labels)

    @given(seed=st.integers(0, 2**16))
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_plane_materializes_eager_bits_every_client_every_task(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, seed
    ):
        # Drive the eager and the virtual data plane over the same three-task
        # schedule and compare every eligible client's training shard per
        # task — the core "lazy recipe == eager shard" contract.
        config = replace(tiny_federated_config, seed=seed, rounds_per_task=1)
        eager_sim = _build(tiny_spec, tiny_backbone_config, config, num_tasks=3)
        virtual_sim = _build(
            tiny_spec, tiny_backbone_config, replace(config, virtual_clients=True), num_tasks=3
        )
        assert isinstance(virtual_sim.virtual, VirtualClientPlane)
        for task in eager_sim.scenario.tasks():
            eager_sim._assign_task_data(task)
            virtual_sim._assign_task_data(task)
            assignment = eager_sim.schedule.assignment_for_task(task.task_id)
            eager_eligible = [
                cid
                for cid in assignment.active_clients
                if cid in eager_sim._training_data and len(eager_sim._training_data[cid]) > 0
            ]
            assert virtual_sim.virtual.eligible(assignment) == eager_eligible
            for client_id in eager_eligible:
                eager_shard = eager_sim._training_data[client_id]
                lazy_shard = virtual_sim.virtual.materialize(client_id)
                np.testing.assert_array_equal(lazy_shard.images, eager_shard.images)
                np.testing.assert_array_equal(lazy_shard.labels, eager_shard.labels)
                assert virtual_sim._client_domains(client_id) == tuple(
                    eager_sim._domains_held[client_id]
                )

    def test_materialization_is_deterministic_across_eviction(self, tiny_spec):
        config = FederatedConfig(virtual_clients=True, population=64, clients_per_round=2)
        plane = VirtualClientPlane(config)
        plane._cache_size = 1  # force eviction between the two materializations
        task_train = SyntheticDomainDataset(tiny_spec).train(0)

        class _Task:
            task_id = 0
            train = task_train

        plane.begin_task(_Task(), None)
        first = plane.materialize(5)
        plane.materialize(9)  # evicts client 5
        again = plane.materialize(5)
        np.testing.assert_array_equal(first.images, again.images)
        np.testing.assert_array_equal(first.labels, again.labels)
        assert first.images.dtype == get_default_dtype()

    def test_fleet_spec_and_groups(self, tiny_spec):
        config = FederatedConfig(virtual_clients=True, population=1000)
        plane = VirtualClientPlane(config)
        dataset = SyntheticDomainDataset(tiny_spec)

        class _Task:
            def __init__(self, task_id, train):
                self.task_id = task_id
                self.train = train

        plane.begin_task(_Task(0, dataset.train(0)), None)
        spec = plane.spec_for(123)
        assert isinstance(spec, VirtualClientSpec)
        assert spec.group is ClientGroup.NEW and spec.components == (0,)
        assert plane.group_for(123) is ClientGroup.NEW

        plane.begin_task(_Task(1, dataset.train(1)), None)
        spec = plane.spec_for(123)
        assert spec.group is ClientGroup.IN_BETWEEN and spec.components == (0, 1)
        assert plane.domains_for(123) == (0, 1)
        # The fleet shard is a pure function of (seed, task, client): two
        # builds agree bit-for-bit, different clients genuinely differ.
        a = plane.materialize(123)
        plane._cache.clear()
        b = plane.materialize(123)
        np.testing.assert_array_equal(a.images, b.images)
        other = plane.materialize(124)
        assert len(other) >= 2
        assert a.images.shape != other.images.shape or not np.array_equal(a.images, other.images)

    def test_schedule_mode_unknown_client_raises(self, tiny_spec):
        plane = VirtualClientPlane(FederatedConfig(virtual_clients=True))
        with pytest.raises(KeyError):
            plane.spec_for(99)


# --------------------------------------------------------------------------- #
# Tree reduce == flat FedAvg (to accumulation-dtype tolerance)
# --------------------------------------------------------------------------- #
def _random_states(rng, cohort, keys=("w", "b"), dtype=np.float64):
    states = []
    for _ in range(cohort):
        states.append(
            {key: rng.normal(size=(3, 2)).astype(dtype) for key in keys}
        )
    return states


class TestTreeReduce:
    @given(
        cohort=st.integers(1, 12),
        fanout=st.integers(2, 6),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=50, deadline=None)
    def test_tree_equals_flat_any_fanout_and_cohort(self, cohort, fanout, seed):
        rng = np.random.default_rng(seed)
        states = _random_states(rng, cohort)
        num_samples = [int(n) for n in rng.integers(1, 50, size=cohort)]
        flat = fedavg(states, num_samples)
        tree = TreeReduceBackend(fanout=fanout).reduce(states, num_samples)
        for key in flat:
            # Flat normalizes weights before accumulating; the tree sums
            # w_i * x_i partials and divides once at the root.  Algebraically
            # identical, equal to accumulation-dtype round-off only.
            np.testing.assert_allclose(tree[key], flat[key], rtol=1e-12, atol=1e-12)

    def test_float32_tolerance(self):
        rng = np.random.default_rng(0)
        states = _random_states(rng, 7, dtype=np.float32)
        num_samples = [5, 1, 9, 3, 2, 8, 4]
        flat = fedavg(states, num_samples)
        tree = TreeReduceBackend(fanout=3).reduce(states, num_samples)
        for key in flat:
            assert tree[key].dtype == flat[key].dtype == np.float32
            np.testing.assert_allclose(tree[key], flat[key], rtol=1e-6, atol=1e-6)

    def test_scale_and_zero_weight_fallback(self):
        rng = np.random.default_rng(1)
        states = _random_states(rng, 4)
        scale = [0.5, 1.0, 0.25, 0.75]
        flat = fedavg(states, [3, 4, 5, 6], scale=scale)
        tree = TreeReduceBackend(fanout=2).reduce(states, [3, 4, 5, 6], scale=scale)
        for key in flat:
            np.testing.assert_allclose(tree[key], flat[key], rtol=1e-12, atol=1e-12)
        # All-zero sample counts fall back to uniform weights, like fedavg.
        flat0 = fedavg(states, [0, 0, 0, 0])
        tree0 = TreeReduceBackend(fanout=2).reduce(states, [0, 0, 0, 0])
        for key in flat0:
            np.testing.assert_allclose(tree0[key], flat0[key], rtol=1e-12, atol=1e-12)

    def test_flat_backend_is_fedavg_bit_for_bit(self):
        rng = np.random.default_rng(2)
        states = _random_states(rng, 3)
        result = FlatReduceBackend().reduce(states, [1, 2, 3])
        expected = fedavg(states, [1, 2, 3])
        for key in expected:
            np.testing.assert_array_equal(result[key], expected[key])

    def test_build_reduce_backend(self):
        assert isinstance(build_reduce_backend("flat"), FlatReduceBackend)
        tree = build_reduce_backend("tree", fanout=4)
        assert isinstance(tree, TreeReduceBackend) and tree.fanout == 4
        with pytest.raises(ValueError):
            build_reduce_backend("ring")
        with pytest.raises(ValueError):
            TreeReduceBackend(fanout=1)

    def test_edge_frame_accounting(self):
        rng = np.random.default_rng(3)
        ledger = CommunicationLedger()
        tree = TreeReduceBackend(fanout=2, codec=build_codec("identity"), ledger=ledger)
        states = _random_states(rng, 5)
        tree.reduce(states, [1, 2, 3, 4, 5])
        # 5 leaves, fanout 2: level 1 ships ceil(5/2)=3 partials, level 2
        # ships 2, level 3 is the single root group (combined in-process,
        # no frame above the root).
        assert ledger.edge_frames == 5
        assert tree.last_edge_frames == 5
        assert ledger.edge_bytes > 0
        assert ledger.total_bytes == ledger.edge_bytes  # nothing else recorded

    def test_cohort_within_fanout_ships_zero_frames(self):
        rng = np.random.default_rng(4)
        ledger = CommunicationLedger()
        tree = TreeReduceBackend(fanout=4, codec=build_codec("identity"), ledger=ledger)
        states = _random_states(rng, 3)
        result = tree.reduce(states, [1, 2, 3])
        assert ledger.edge_frames == 0 and ledger.edge_bytes == 0
        expected = fedavg(states, [1, 2, 3])
        for key in expected:
            np.testing.assert_allclose(result[key], expected[key], rtol=1e-12, atol=1e-12)

    def test_edge_faults_retry_and_stay_exact(self):
        rng = np.random.default_rng(5)
        ledger = CommunicationLedger()
        injector = FaultInjector(seed=0, spec=FaultSpec(upload_loss_rate=0.6))
        tree = TreeReduceBackend(
            fanout=2,
            codec=build_codec("identity"),
            ledger=ledger,
            faults=injector,
            retries=2,
            retry_backoff=0.5,
        )
        states = _random_states(rng, 6)
        num_samples = [1, 2, 3, 4, 5, 6]
        result = tree.reduce(states, num_samples, coordinate=0)
        # Lost edge frames are retried (and, when exhausted, delivered over
        # the reliable control channel), so aggregation stays exact even at a
        # 60% per-attempt loss rate.
        expected = fedavg(states, num_samples)
        for key in expected:
            np.testing.assert_allclose(result[key], expected[key], rtol=1e-12, atol=1e-12)
        assert ledger.edge_lost_frames > 0
        assert injector.counters["frames_lost"] == ledger.edge_lost_frames
        penalty = tree.collect_penalty()
        assert penalty > 0.0
        assert tree.collect_penalty() == 0.0  # collect resets

    def test_edge_fault_draws_are_deterministic(self):
        spec = FaultSpec(upload_loss_rate=0.5, upload_corruption_rate=0.5)
        a = FaultInjector(seed=9, spec=spec)
        b = FaultInjector(seed=9, spec=spec)
        for coordinate in range(4):
            for level in (1, 2):
                for node in range(3):
                    assert a.edge_frame_lost(coordinate, level, node, 1) == b.edge_frame_lost(
                        coordinate, level, node, 1
                    )
                    assert a.edge_frame_corrupted(
                        coordinate, level, node, 1
                    ) == b.edge_frame_corrupted(coordinate, level, node, 1)


# --------------------------------------------------------------------------- #
# Profile cache
# --------------------------------------------------------------------------- #
class TestProfileCache:
    def test_matches_build_profile_and_bounds_memory(self):
        cache = ProfileCache("moderate", seed=3, maxsize=8)
        for client_id in range(32):
            assert cache.get(client_id) == build_profile("moderate", 3, client_id)
        assert len(cache) <= 8
        # Re-fetch after eviction: identical bits (pure function of the seed).
        assert cache.get(0) == build_profile("moderate", 3, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProfileCache("instant", seed=0, maxsize=0)


# --------------------------------------------------------------------------- #
# Configuration surface
# --------------------------------------------------------------------------- #
class TestHierarchyConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FederatedConfig(population=-1)
        with pytest.raises(ValueError):
            FederatedConfig(population=10)  # needs virtual_clients
        with pytest.raises(ValueError):
            FederatedConfig(reduce_backend="ring")
        with pytest.raises(ValueError):
            FederatedConfig(reduce_backend="tree", transport="direct")
        with pytest.raises(ValueError):
            FederatedConfig(tree_fanout=1)
        # The valid combinations construct fine.
        FederatedConfig(virtual_clients=True, population=100_000)
        FederatedConfig(reduce_backend="tree", tree_fanout=8)

    def test_fingerprint_covers_hierarchy_knobs(self):
        base = FederatedConfig()
        assert config_fingerprint(base) != config_fingerprint(replace(base, virtual_clients=True))
        assert config_fingerprint(base) != config_fingerprint(replace(base, tree_fanout=3))
        assert config_fingerprint(base) != config_fingerprint(
            replace(base, reduce_backend="tree")
        )
        assert config_fingerprint(base) != config_fingerprint(
            replace(base, virtual_clients=True, population=10)
        )

    def test_run_cache_folds_inert_hierarchy_knobs(self):
        from repro.experiments.runner import _normalize_execution_knobs

        base = FederatedConfig()
        # virtual_clients without a population is bit-for-bit the eager run.
        assert _normalize_execution_knobs(replace(base, virtual_clients=True)) == (
            _normalize_execution_knobs(base)
        )
        # The fanout is never consulted under a flat reduce.
        assert _normalize_execution_knobs(replace(base, tree_fanout=5)) == (
            _normalize_execution_knobs(base)
        )
        # The tree backend changes the numbers (float tolerance) and stays.
        assert _normalize_execution_knobs(replace(base, reduce_backend="tree")) != (
            _normalize_execution_knobs(base)
        )
        # A fleet population changes the cohorts outright and stays.
        assert _normalize_execution_knobs(
            replace(base, virtual_clients=True, population=100)
        ) != _normalize_execution_knobs(replace(base, virtual_clients=True))
        # Under a tree reduce the fanout changes the frame topology and stays.
        assert _normalize_execution_knobs(
            replace(base, reduce_backend="tree", tree_fanout=5)
        ) != _normalize_execution_knobs(replace(base, reduce_backend="tree"))


# --------------------------------------------------------------------------- #
# Full-simulation parity and fleet runs
# --------------------------------------------------------------------------- #
class TestSimulationParity:
    @pytest.mark.parametrize("mode", ["sync", "async", "buffered"])
    def test_virtual_run_reproduces_eager_run(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, mode
    ):
        config = replace(tiny_federated_config, mode=mode, rounds_per_task=2)
        eager_sim, eager = _run(tiny_spec, tiny_backbone_config, config)
        virtual_sim, virtual = _run(
            tiny_spec, tiny_backbone_config, replace(config, virtual_clients=True)
        )
        assert simulation_state_hash(virtual_sim) == simulation_state_hash(eager_sim)
        np.testing.assert_array_equal(
            virtual_sim.evaluator.accuracy_matrix._matrix,
            eager_sim.evaluator.accuracy_matrix._matrix,
        )
        assert virtual.round_losses == eager.round_losses
        assert virtual.event_log == eager.event_log

    def test_tree_run_matches_flat_within_tolerance(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        # A cohort of 3 with fanout 2 genuinely ships edge frames (a cohort
        # within the fanout degenerates to an in-process root reduce).
        config = replace(tiny_federated_config, clients_per_round=3, rounds_per_task=2)
        _, flat = _run(tiny_spec, tiny_backbone_config, config)
        tree_sim, tree = _run(
            tiny_spec, tiny_backbone_config, replace(config, reduce_backend="tree", tree_fanout=2)
        )
        np.testing.assert_allclose(
            np.asarray(tree.metrics.matrix),
            np.asarray(flat.metrics.matrix),
            rtol=1e-6,
            atol=1e-6,
        )
        assert tree.communication.edge_frames > 0
        assert tree.communication.edge_bytes > 0
        assert isinstance(tree_sim.server.reduce_backend, TreeReduceBackend)

    def test_fleet_population_trains(self, tiny_spec, tiny_backbone_config, tiny_federated_config):
        config = replace(
            tiny_federated_config,
            virtual_clients=True,
            population=5000,
            rounds_per_task=2,
            reduce_backend="tree",
            tree_fanout=2,
        )
        sim, result = _run(tiny_spec, tiny_backbone_config, config)
        matrix = np.asarray(result.metrics.matrix)
        assert np.isfinite(matrix[np.tril_indices_from(matrix)]).all()
        # O(cohort) state: nothing population-sized was ever materialized.
        assert len(sim.virtual._cache) <= sim.virtual._cache_size
        assert not sim._training_data
        # Selected ids actually span the population, not a small prefix.
        dispatched = {
            client_id
            for entry in result.event_log
            for client_id in entry.get("clients", ())
        }
        assert max(dispatched) >= 1000

    @pytest.mark.parametrize("mode", ["async", "buffered"])
    def test_fleet_population_temporal_modes(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, mode
    ):
        config = replace(
            tiny_federated_config,
            virtual_clients=True,
            population=2000,
            mode=mode,
            device_profile="moderate",
            rounds_per_task=2,
        )
        _, result = _run(tiny_spec, tiny_backbone_config, config)
        matrix = np.asarray(result.metrics.matrix)
        assert np.isfinite(matrix[np.tril_indices_from(matrix)]).all()


class TestVirtualResume:
    def test_resumed_virtual_run_matches_uninterrupted(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, tmp_path
    ):
        import shutil

        from repro.federated import parse_checkpoint_name

        full_dir = tmp_path / "full"
        config = replace(
            tiny_federated_config,
            virtual_clients=True,
            population=500,
            rounds_per_task=2,
            checkpoint_every=1,
            checkpoint_dir=str(full_dir),
        )
        full_sim, full = _run(tiny_spec, tiny_backbone_config, config)
        names = sorted(os.listdir(full_dir), key=parse_checkpoint_name)
        assert len(names) >= 2
        resume_dir = tmp_path / "resume"
        resume_dir.mkdir()
        shutil.copy(full_dir / names[0], resume_dir / names[0])
        resumed_cfg = replace(config, checkpoint_dir=str(resume_dir), resume=True)
        resumed_sim, resumed = _run(tiny_spec, tiny_backbone_config, resumed_cfg)
        assert simulation_state_hash(resumed_sim) == simulation_state_hash(full_sim)
        assert resumed.event_log == full.event_log

    def test_resume_refuses_mismatched_tree_fanout(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, tmp_path
    ):
        directory = str(tmp_path / "ckpt")
        config = replace(
            tiny_federated_config,
            virtual_clients=True,
            population=500,
            reduce_backend="tree",
            tree_fanout=2,
            checkpoint_every=1,
            checkpoint_dir=directory,
        )
        _run(tiny_spec, tiny_backbone_config, config)
        mismatched = replace(config, tree_fanout=3, resume=True)
        simulation = _build(tiny_spec, tiny_backbone_config, mismatched)
        with pytest.raises(CheckpointMismatchError):
            simulation.run()
