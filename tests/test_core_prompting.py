"""Tests for RefFiL's prompt machinery: CDAP, prompt stores, clustering, DPCL, GPL."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.core import (
    CDAPConfig,
    CDAPGenerator,
    DPCLConfig,
    GlobalPromptStore,
    LocalPromptCollector,
    cluster_prompt_groups,
    decayed_temperature,
    dpcl_loss,
    gpl_loss,
)
from repro.core.clustering import cluster_class_prompts
from repro.core.model import RefFiLModel
from repro.federated.increment import ClientGroup
from repro.models.backbone import PromptedBackbone

RNG = np.random.default_rng(21)


class TestCDAPGenerator:
    @pytest.fixture
    def generator(self):
        return CDAPGenerator(CDAPConfig(embed_dim=16, num_tokens=9, prompt_length=3, max_tasks=4, seed=0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CDAPConfig(prompt_length=0)
        with pytest.raises(ValueError):
            CDAPConfig(num_tokens=1)
        with pytest.raises(ValueError):
            CDAPConfig(max_tasks=0)

    def test_prompt_shape(self, generator):
        tokens = Tensor(RNG.standard_normal((5, 9, 16)))
        prompts = generator(tokens, task_id=1)
        assert prompts.shape == (5, 3, 16)

    def test_prompts_are_instance_conditioned(self, generator):
        tokens = Tensor(RNG.standard_normal((2, 9, 16)))
        prompts = generator(tokens, task_id=0).data
        assert not np.allclose(prompts[0], prompts[1])

    def test_task_id_changes_prompts(self, generator):
        tokens = Tensor(RNG.standard_normal((2, 9, 16)))
        a = generator(tokens, task_id=0).data
        b = generator(tokens, task_id=2).data
        assert not np.allclose(a, b)

    def test_task_free_path_ignores_task(self, generator):
        tokens = Tensor(RNG.standard_normal((2, 9, 16)))
        assert generator.generate_without_task(tokens).shape == (2, 3, 16)

    def test_input_validation(self, generator):
        with pytest.raises(ValueError):
            generator(Tensor(RNG.standard_normal((2, 5, 16))), task_id=0)
        with pytest.raises(ValueError):
            generator(Tensor(RNG.standard_normal((2, 9, 8))), task_id=0)
        with pytest.raises(IndexError):
            generator(Tensor(RNG.standard_normal((2, 9, 16))), task_id=10)
        with pytest.raises(ValueError):
            generator(Tensor(RNG.standard_normal((9, 16))), task_id=0)

    def test_gradients_flow_to_all_components(self, generator):
        tokens = Tensor(RNG.standard_normal((3, 9, 16)), requires_grad=True)
        generator(tokens, task_id=1).sum().backward()
        assert tokens.grad is not None
        assert generator.ccda.weight.grad is not None
        assert generator.film.weight.grad is not None
        assert generator.task_keys.weight.grad is not None


class TestLocalPromptCollector:
    def test_average_per_class(self):
        collector = LocalPromptCollector(embed_dim=4)
        prompts = Tensor(np.stack([np.full((2, 4), 1.0), np.full((2, 4), 3.0)]))
        collector.add_batch(prompts, np.array([0, 0]))
        group = collector.local_prompt_group()
        assert np.allclose(group[0], 2.0)
        assert collector.classes_seen == [0]
        assert len(collector) == 2

    def test_multiple_classes_and_reset(self):
        collector = LocalPromptCollector(embed_dim=4)
        collector.add_batch(Tensor(RNG.standard_normal((6, 2, 4))), np.array([0, 1, 2, 0, 1, 2]))
        assert set(collector.local_prompt_group()) == {0, 1, 2}
        collector.reset()
        assert len(collector) == 0

    def test_validation(self):
        collector = LocalPromptCollector(embed_dim=4)
        with pytest.raises(ValueError):
            collector.add_batch(Tensor(RNG.standard_normal((2, 3, 5))), np.array([0, 1]))
        with pytest.raises(ValueError):
            collector.add_batch(Tensor(RNG.standard_normal((2, 3, 4))), np.array([0]))


class TestGlobalPromptStore:
    def test_replace_and_queries(self):
        store = GlobalPromptStore(num_classes=3, embed_dim=4)
        assert store.is_empty
        store.replace({0: np.ones((2, 4)), 1: np.zeros(4)})
        assert len(store) == 3
        assert store.class_prompts(0).shape == (2, 4)
        assert store.class_prompts(1).shape == (1, 4)
        assert store.class_prompts(2).shape == (0, 4)
        assert store.all_prompts().shape == (3, 4)
        assert store.prompts_excluding(0).shape == (1, 4)

    def test_averaged_prompt_matrix_covers_all_classes(self):
        store = GlobalPromptStore(num_classes=3, embed_dim=4)
        assert store.averaged_prompt_matrix() is None
        store.replace({0: np.full((2, 4), 2.0)})
        matrix = store.averaged_prompt_matrix()
        assert matrix.shape == (3, 4)
        assert np.allclose(matrix[0], 2.0)
        assert np.allclose(matrix[2], 2.0)  # falls back to overall mean

    def test_payload_roundtrip(self):
        store = GlobalPromptStore(num_classes=2, embed_dim=4)
        store.replace({1: RNG.standard_normal((3, 4))})
        payload = store.to_payload()
        rebuilt = GlobalPromptStore.from_payload(payload, num_classes=2, embed_dim=4)
        assert np.allclose(rebuilt.class_prompts(1), store.class_prompts(1))
        assert rebuilt.payload_bytes() == store.payload_bytes()

    def test_validation(self):
        store = GlobalPromptStore(num_classes=2, embed_dim=4)
        with pytest.raises(ValueError):
            store.replace({0: np.ones((2, 5))})
        with pytest.raises(KeyError):
            store.replace({7: np.ones((1, 4))})
        with pytest.raises(ValueError):
            GlobalPromptStore(num_classes=0, embed_dim=4)


class TestPromptClustering:
    def test_few_prompts_pass_through(self):
        vectors = RNG.standard_normal((2, 6))
        assert np.allclose(cluster_class_prompts(vectors), vectors)

    def test_domain_separated_prompts_yield_multiple_representatives(self):
        domain_a = np.tile(np.array([5.0, 0.0, 0.0, 0.0]), (6, 1)) + RNG.normal(0, 0.05, (6, 4))
        domain_b = np.tile(np.array([0.0, 5.0, 0.0, 0.0]), (6, 1)) + RNG.normal(0, 0.05, (6, 4))
        representatives = cluster_class_prompts(np.vstack([domain_a, domain_b]))
        assert 2 <= representatives.shape[0] <= 12

    def test_max_representatives_cap(self):
        vectors = RNG.standard_normal((30, 4))
        assert cluster_class_prompts(vectors, max_representatives=3).shape[0] <= 3

    def test_cluster_prompt_groups_merges_clients_and_existing(self):
        groups = [{0: np.ones(4), 1: np.zeros(4)}, {0: np.full(4, 2.0)}]
        existing = {1: np.full((1, 4), 5.0)}
        clustered = cluster_prompt_groups(groups, existing=existing)
        assert set(clustered) == {0, 1}
        assert clustered[0].shape[1] == 4
        assert clustered[1].shape[0] >= 1


class TestTemperatureDecay:
    def test_paper_equation_values(self):
        config = DPCLConfig(tau=0.9, tau_min=0.3, gamma=0.1, beta=0.05)
        # tau' = tau * (1 - (gamma + (t-1) beta)) until the floor is hit.
        assert decayed_temperature(config, 1) == pytest.approx(0.9 * (1 - 0.1))
        assert decayed_temperature(config, 3) == pytest.approx(0.9 * (1 - 0.2))
        assert decayed_temperature(config, 100) == pytest.approx(0.3)

    def test_table8_default_row(self):
        config = DPCLConfig(tau=0.9, tau_min=0.3, gamma=0.1, beta=0.05)
        assert decayed_temperature(config, 3) == pytest.approx(0.72)

    def test_decay_disabled(self):
        config = DPCLConfig(tau=0.9, tau_min=0.3, gamma=0.1, beta=0.05, enable_decay=False)
        assert decayed_temperature(config, 5) == pytest.approx(0.9)

    def test_monotone_non_increasing_in_task(self):
        config = DPCLConfig()
        temps = [decayed_temperature(config, t) for t in range(1, 10)]
        assert all(a >= b for a, b in zip(temps, temps[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            DPCLConfig(tau=0.2, tau_min=0.3)
        with pytest.raises(ValueError):
            DPCLConfig(gamma=1.5)
        with pytest.raises(ValueError):
            decayed_temperature(DPCLConfig(), 0)

    @given(st.integers(1, 20), st.floats(0.4, 0.95), st.floats(0.01, 0.2))
    @settings(max_examples=30, deadline=None)
    def test_temperature_stays_in_valid_range(self, task, tau, beta):
        config = DPCLConfig(tau=tau, tau_min=0.3 if tau >= 0.3 else tau, gamma=0.1, beta=beta)
        temp = decayed_temperature(config, task)
        assert config.tau_min - 1e-12 <= temp <= config.tau + 1e-12


class TestDPCLLoss:
    def _store(self):
        store = GlobalPromptStore(num_classes=2, embed_dim=4)
        store.replace(
            {
                0: np.stack([np.array([1.0, 0, 0, 0]), np.array([0, 0, 1.0, 0])]),
                1: np.array([[0, 1.0, 0, 0]]),
            }
        )
        return store

    def test_empty_store_returns_none(self):
        store = GlobalPromptStore(num_classes=2, embed_dim=4)
        prompts = Tensor(RNG.standard_normal((3, 2, 4)))
        assert dpcl_loss(prompts, np.array([0, 1, 0]), store, ClientGroup.NEW, 0.5) is None

    def test_aligned_prompts_give_lower_loss_than_misaligned(self):
        store = self._store()
        aligned = Tensor(np.tile(np.array([1.0, 0, 0, 0]), (2, 2, 1)))
        misaligned = Tensor(np.tile(np.array([0.0, 1.0, 0, 0]), (2, 2, 1)))
        labels = np.array([0, 0])
        low = dpcl_loss(aligned, labels, store, ClientGroup.NEW, 0.5)
        high = dpcl_loss(misaligned, labels, store, ClientGroup.NEW, 0.5)
        assert float(low.data) < float(high.data)

    def test_in_between_uses_two_positives(self):
        store = self._store()
        prompts = Tensor(RNG.standard_normal((2, 2, 4)))
        labels = np.array([0, 0])
        loss_new = dpcl_loss(prompts, labels, store, ClientGroup.NEW, 0.5)
        loss_between = dpcl_loss(prompts, labels, store, ClientGroup.IN_BETWEEN, 0.5)
        # With two positives the numerator can only grow, so the loss cannot be larger.
        assert float(loss_between.data) <= float(loss_new.data) + 1e-9

    def test_gradient_flows_to_prompts(self):
        store = self._store()
        prompts = Tensor(RNG.standard_normal((3, 2, 4)), requires_grad=True)
        loss = dpcl_loss(prompts, np.array([0, 1, 0]), store, ClientGroup.NEW, 0.5)
        loss.backward()
        assert prompts.grad is not None

    def test_temperature_validation(self):
        store = self._store()
        prompts = Tensor(RNG.standard_normal((1, 2, 4)))
        with pytest.raises(ValueError):
            dpcl_loss(prompts, np.array([0]), store, ClientGroup.NEW, 0.0)

    def test_unknown_class_samples_are_skipped(self):
        store = GlobalPromptStore(num_classes=3, embed_dim=4)
        store.replace({0: np.ones((1, 4))})
        prompts = Tensor(RNG.standard_normal((2, 2, 4)))
        # Class 2 has no global prompts and class 0 has no negatives -> loss is None.
        assert dpcl_loss(prompts, np.array([2, 2]), store, ClientGroup.NEW, 0.5) is None


class TestGPLLoss:
    def test_none_without_global_prompts(self, tiny_backbone_config):
        backbone = PromptedBackbone(tiny_backbone_config)
        images = Tensor(RNG.standard_normal((2, 3, 16, 16)))
        patches = backbone.patch_tokens(images)
        assert gpl_loss(backbone, patches, np.array([0, 1]), None) is None

    def test_scalar_loss_with_prompts(self, tiny_backbone_config):
        backbone = PromptedBackbone(tiny_backbone_config)
        images = Tensor(RNG.standard_normal((2, 3, 16, 16)))
        patches = backbone.patch_tokens(images)
        prompts = RNG.standard_normal((tiny_backbone_config.num_classes, tiny_backbone_config.embed_dim))
        loss = gpl_loss(backbone, patches, np.array([0, 1]), prompts)
        assert loss.data.size == 1
        loss.backward()
        assert backbone.classifier.head.weight.grad is not None


class TestRefFiLModel:
    def test_composite_state_dict_contains_both_parts(self, tiny_backbone_config):
        model = RefFiLModel(tiny_backbone_config, prompt_length=3, max_tasks=4)
        keys = model.state_dict().keys()
        assert any(key.startswith("backbone.") for key in keys)
        assert any(key.startswith("cdap.") for key in keys)

    def test_generate_prompts_shapes(self, tiny_backbone_config):
        model = RefFiLModel(tiny_backbone_config, prompt_length=3, max_tasks=4)
        images = Tensor(RNG.standard_normal((2, 3, 16, 16)))
        assert model.generate_prompts(images, task_id=1).shape == (2, 3, tiny_backbone_config.embed_dim)
        assert model.generate_prompts(images, task_id=None).shape == (2, 3, tiny_backbone_config.embed_dim)

    def test_forward_with_and_without_prompts(self, tiny_backbone_config):
        model = RefFiLModel(tiny_backbone_config, prompt_length=3, max_tasks=4)
        images = Tensor(RNG.standard_normal((2, 3, 16, 16)))
        plain = model(images)
        prompted = model(images, model.generate_prompts(images, task_id=0))
        assert plain.shape == prompted.shape == (2, tiny_backbone_config.num_classes)
