"""Tests of the serving plane: registry durability, hot swap, front-end delivery.

The plane's contract comes in three layers, each with its own guarantees:

* **Registry** — published versions survive the disk round-trip bit-exactly
  (property-tested across codecs, dtypes and shapes), the manifest orders
  versions and keeps ``latest()`` monotonic even across pruning, and any
  corruption (truncated file, mangled manifest, inconsistent ids) raises a
  typed :class:`~repro.serving.registry.RegistryCorruptionError` — garbage is
  never served.
* **Engine** — served logits are bit-for-bit identical to direct evaluation
  of the same version under both serving kernels, snapshots are immune to
  later mutation of the live method, and hot swap is atomic: concurrent
  requests are answered entirely by one version or the other.
* **Front end** — every accepted request is answered exactly once (including
  the backlog at ``stop()``), a full queue rejects with a typed
  :class:`~repro.serving.service.QueueFullError`, and under concurrent
  publishes no response is dropped or tagged with a version the manifest
  does not know.

The satellites live here too: ``checkpoint_keep`` retention (shared last-K
policy), thread-local kernel-plane state (tracing/no-grad/dtype must not
bleed between the training thread and serving workers), and the serving
knobs' config validation, fingerprint masking and run-cache folding.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import tape as tape_mod
from repro.autograd.tensor import Tensor, default_dtype, get_default_dtype, no_grad
from repro.baselines.base import BaselineConfig
from repro.baselines.finetune import FinetuneMethod
from repro.baselines.registry import build_method
from repro.continual import DomainIncrementalScenario
from repro.datasets import SyntheticDomainDataset
from repro.federated import FederatedDomainIncrementalSimulation
from repro.federated.checkpoint import (
    config_fingerprint,
    parse_checkpoint_name,
    prune_checkpoints,
    retain_last,
)
from repro.federated.config import FederatedConfig
from repro.serving import (
    InferenceEngine,
    ModelRegistry,
    QueueFullError,
    RegistryCorruptionError,
    RegistryError,
    ServingFrontEnd,
    UnknownVersionError,
    VersionInfo,
)
from repro.serving.registry import version_filename


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #

def _method(backbone):
    return build_method("finetune", backbone, num_tasks=2)


class ScaledMethod(FinetuneMethod):
    """Module-level (the snapshot pickle-freezes methods) mutable test method:
    ``predict_logits`` consults a live attribute the trainer can change."""

    name = "scaled"

    def __init__(self, config):
        super().__init__(config)
        self.logit_scale = 1.0

    def predict_logits(self, model, images):
        return model(images) * self.logit_scale


def _publish_model(registry, method, **kwargs):
    model = method.build_model()
    return registry.publish(
        name=method.name,
        state=model.state_dict(),
        payload_codec=method.payload_codec(),
        **kwargs,
    )


_DTYPES = (np.float64, np.float32, np.int64, np.uint8)
_SHAPES = ((), (1,), (5,), (2, 3), (2, 0), (2, 2, 2))


@st.composite
def state_dicts(draw):
    num = draw(st.integers(1, 4))
    state = {}
    for index in range(num):
        dtype = np.dtype(draw(st.sampled_from(_DTYPES)))
        shape = draw(st.sampled_from(_SHAPES))
        rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
        if dtype.kind == "f":
            values = rng.standard_normal(shape).astype(dtype)
        else:
            values = rng.integers(0, 100, size=shape).astype(dtype)
        state[f"param_{index}"] = values
    return state


# --------------------------------------------------------------------------- #
# Registry durability
# --------------------------------------------------------------------------- #

class TestRegistryDurability:
    @given(state=state_dicts(), codec=st.sampled_from(["identity", "delta"]))
    @settings(max_examples=25, deadline=None)
    def test_lossless_publish_load_round_trip(self, tmp_path_factory, state, codec):
        """Lossless codecs: what was published is what loads, bit for bit."""
        directory = str(tmp_path_factory.mktemp("registry"))
        registry = ModelRegistry(directory)
        info = registry.publish(name="m", state=state, codec=codec)
        loaded = registry.load(info.version)
        assert set(loaded.state) == set(state)
        for key, value in state.items():
            assert loaded.state[key].dtype == value.dtype
            np.testing.assert_array_equal(loaded.state[key], value)

    def test_payload_round_trips_through_method_codec(self, tmp_path, tiny_backbone_config):
        method = _method(tiny_backbone_config)
        registry = ModelRegistry(str(tmp_path))
        model = method.build_model()
        payload = {"temperature": np.asarray([0.5, 1.5])}
        registry.publish(
            name=method.name,
            state=model.state_dict(),
            payload=payload,
            payload_codec=method.payload_codec(),
        )
        loaded = registry.load(payload_codec=method.payload_codec())
        np.testing.assert_array_equal(loaded.payload["temperature"], payload["temperature"])
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(loaded.state[key], value)

    def test_manifest_metadata_and_ordering(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        for index in range(3):
            info = registry.publish(
                name="m",
                state={"w": np.full(3, float(index))},
                codec="delta",
                task_id=index,
                round_index=index + 1,
                fingerprint=f"fp-{index}",
                accuracy={"domain": 0.1 * index},
            )
            assert info.version == index + 1
            assert info.num_bytes == os.path.getsize(
                tmp_path / version_filename(info.version)
            )
        versions = registry.list_versions()
        assert [entry.version for entry in versions] == [1, 2, 3]
        assert [entry.task_id for entry in versions] == [0, 1, 2]
        assert versions[-1].accuracy == {"domain": pytest.approx(0.2)}
        assert registry.info(2).fingerprint == "fp-1"
        with pytest.raises(UnknownVersionError):
            registry.info(99)

    def test_latest_is_monotonic_across_instances_and_pruning(self, tmp_path):
        """Version ids never regress: next_version survives pruning and reopen."""
        directory = str(tmp_path)
        seen = []
        for index in range(5):
            registry = ModelRegistry(directory, keep=2)  # fresh instance each time
            info = registry.publish(name="m", state={"w": np.zeros(2)})
            latest = registry.latest()
            assert latest is not None and latest.version == info.version
            if seen:
                assert info.version > seen[-1]
            seen.append(info.version)
        assert seen == [1, 2, 3, 4, 5]

    def test_retention_prunes_oldest_first(self, tmp_path):
        registry = ModelRegistry(str(tmp_path), keep=2)
        for _ in range(5):
            registry.publish(name="m", state={"w": np.arange(4.0)})
        assert [entry.version for entry in registry.list_versions()] == [4, 5]
        on_disk = sorted(name for name in os.listdir(tmp_path) if name.endswith(".rpv"))
        assert on_disk == [version_filename(4), version_filename(5)]
        with pytest.raises(UnknownVersionError):
            registry.load(1)

    def test_empty_registry(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        assert registry.latest() is None
        assert registry.list_versions() == []
        with pytest.raises(UnknownVersionError):
            registry.load()

    def test_truncated_version_file_raises_typed_error(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        info = registry.publish(name="m", state={"w": np.zeros(8)})
        path = tmp_path / info.filename
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(RegistryCorruptionError):
            registry.load(info.version)

    def test_corrupted_version_file_raises_typed_error(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        info = registry.publish(name="m", state={"w": np.zeros(8)})
        path = tmp_path / info.filename
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # flip a payload bit: CRC must catch it
        path.write_bytes(bytes(raw))
        with pytest.raises(RegistryCorruptionError):
            registry.load(info.version)

    def test_missing_version_file_raises_typed_error(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        info = registry.publish(name="m", state={"w": np.zeros(2)})
        os.remove(tmp_path / info.filename)
        with pytest.raises(RegistryCorruptionError, match="missing"):
            registry.load(info.version)

    def test_mangled_manifest_raises_typed_error(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        registry.publish(name="m", state={"w": np.zeros(2)})
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(RegistryCorruptionError):
            registry.list_versions()

    def test_malformed_manifest_entry_raises_typed_error(self):
        with pytest.raises(RegistryCorruptionError, match="malformed"):
            VersionInfo.from_json({"version": "not-an-int-either-way", "name": "m"})

    def test_registry_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ModelRegistry("")
        with pytest.raises(ValueError):
            ModelRegistry(str(tmp_path), keep=-1)


# --------------------------------------------------------------------------- #
# Inference engine: parity and hot swap
# --------------------------------------------------------------------------- #

class TestInferenceEngine:
    def _direct_logits(self, registry, method, version, images):
        loaded = registry.load(version, method.payload_codec())
        dtype = np.float64
        for value in loaded.state.values():
            if np.asarray(value).dtype.kind == "f":
                dtype = np.asarray(value).dtype
                break
        with default_dtype(np.dtype(dtype)):
            model = method.build_model()
            model.load_state_dict(loaded.state)
        model.eval()
        with default_dtype(np.dtype(dtype)), no_grad():
            return np.asarray(method.predict_logits(model, Tensor(np.asarray(images))).data)

    @pytest.mark.parametrize("kernel", ["eager", "tape"])
    def test_served_logits_bit_identical_to_direct_eval(
        self, tmp_path, tiny_backbone_config, rng, kernel
    ):
        method = _method(tiny_backbone_config)
        registry = ModelRegistry(str(tmp_path))
        info = _publish_model(registry, method, codec="delta")
        engine = InferenceEngine(registry, method, kernel=kernel)
        assert engine.install().version == info.version
        size = tiny_backbone_config.image_size
        images = rng.uniform(-1.0, 1.0, size=(4, 3, size, size))
        direct = self._direct_logits(registry, method, info.version, images)
        # Three passes cover the tape kernel's full lifecycle: trace, verify
        # (eager authoritative), replay-only — all must match bit for bit.
        for _ in range(3):
            batch = engine.predict(images)
            assert batch.version == info.version
            np.testing.assert_array_equal(batch.logits, direct)

    def test_predict_before_install_raises(self, tmp_path, tiny_backbone_config):
        method = _method(tiny_backbone_config)
        engine = InferenceEngine(ModelRegistry(str(tmp_path)), method)
        with pytest.raises(RegistryError, match="no version installed"):
            engine.predict(np.zeros((1, 3, 8, 8)))

    def test_unknown_kernel_rejected(self, tmp_path, tiny_backbone_config):
        with pytest.raises(ValueError, match="serving kernel"):
            InferenceEngine(
                ModelRegistry(str(tmp_path)), _method(tiny_backbone_config), kernel="batched"
            )

    def test_refresh_installs_only_newer(self, tmp_path, tiny_backbone_config, rng):
        method = _method(tiny_backbone_config)
        registry = ModelRegistry(str(tmp_path))
        engine = InferenceEngine(registry, method)
        assert engine.refresh() is None  # empty registry: nothing to install
        _publish_model(registry, method)
        assert engine.refresh().version == 1
        assert engine.refresh() is None  # already current
        assert engine.swap_count == 0  # first install is not a swap
        _publish_model(registry, method)
        assert engine.refresh().version == 2
        assert engine.swap_count == 1
        # Installing the already-current version is a no-op, not a swap.
        assert engine.install(2).version == 2
        assert engine.swap_count == 1

    def test_snapshot_frozen_against_later_method_mutation(
        self, tmp_path, tiny_backbone_config, rng
    ):
        """The snapshot pickles the method: later live mutations cannot bleed in."""
        method = ScaledMethod(BaselineConfig(backbone=tiny_backbone_config))
        registry = ModelRegistry(str(tmp_path))
        _publish_model(registry, method)
        engine = InferenceEngine(registry, method)
        engine.install()
        size = tiny_backbone_config.image_size
        images = rng.uniform(-1.0, 1.0, size=(2, 3, size, size))
        before = engine.predict(images).logits
        method.logit_scale = 100.0  # trainer mutates its live method mid-serve
        np.testing.assert_array_equal(engine.predict(images).logits, before)

    def test_hot_swap_atomic_under_concurrent_predicts(
        self, tmp_path, tiny_backbone_config, rng
    ):
        """Concurrent predicts during installs: every batch is one whole version."""
        method = _method(tiny_backbone_config)
        registry = ModelRegistry(str(tmp_path))
        size = tiny_backbone_config.image_size
        images = rng.uniform(-1.0, 1.0, size=(2, 3, size, size))
        for index in range(4):
            model = method.build_model()
            state = {
                key: np.asarray(value) + (index if np.asarray(value).dtype.kind == "f" else 0)
                for key, value in model.state_dict().items()
            }
            registry.publish(name="m", state=state, payload_codec=method.payload_codec())
        engine = InferenceEngine(registry, method)
        engine.install(1)
        expected = {
            version: self._direct_logits(registry, method, version, images)
            for version in (1, 2, 3, 4)
        }
        stop = threading.Event()
        failures = []

        def client():
            while not stop.is_set():
                batch = engine.predict(images)
                if not np.array_equal(batch.logits, expected[batch.version]):
                    failures.append(batch.version)
                    return

        threads = [threading.Thread(target=client) for _ in range(3)]
        for thread in threads:
            thread.start()
        for version in (2, 3, 4, 2, 3, 4):
            engine.install(version)
            time.sleep(0.01)
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures, f"mixed-version responses for versions {failures}"
        assert engine.swap_count >= 6


# --------------------------------------------------------------------------- #
# Serving front end: delivery guarantees
# --------------------------------------------------------------------------- #

class TestServingFrontEnd:
    def _served_engine(self, tmp_path, backbone):
        method = _method(backbone)
        registry = ModelRegistry(str(tmp_path))
        _publish_model(registry, method)
        engine = InferenceEngine(registry, method)
        engine.install()
        return engine

    def test_full_queue_rejects_with_typed_error(self, tmp_path, tiny_backbone_config):
        engine = self._served_engine(tmp_path, tiny_backbone_config)
        size = tiny_backbone_config.image_size
        frontend = ServingFrontEnd(engine, max_queue=1)  # workers never started
        frontend._accepting = True
        frontend.submit(np.zeros((3, size, size)))
        with pytest.raises(QueueFullError):
            frontend.submit(np.zeros((3, size, size)))
        assert frontend.telemetry()["rejected"] == 1

    def test_submit_after_stop_raises(self, tmp_path, tiny_backbone_config):
        engine = self._served_engine(tmp_path, tiny_backbone_config)
        size = tiny_backbone_config.image_size
        frontend = ServingFrontEnd(engine).start()
        frontend.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            frontend.submit(np.zeros((3, size, size)))

    def test_stop_drains_accepted_backlog(self, tmp_path, tiny_backbone_config, rng):
        """Requests accepted before stop() are all answered, never dropped."""
        engine = self._served_engine(tmp_path, tiny_backbone_config)
        size = tiny_backbone_config.image_size
        frontend = ServingFrontEnd(engine, max_queue=64, max_batch=4, num_workers=2).start()
        futures = [
            frontend.submit(rng.uniform(-1.0, 1.0, size=(3, size, size)))
            for _ in range(20)
        ]
        frontend.stop()
        for future in futures:
            response = future.result(timeout=0)  # stop() already drained them
            assert response.logits.shape == (tiny_backbone_config.num_classes,)
        assert frontend.telemetry()["total_requests"] == 20

    def test_microbatching_and_telemetry(self, tmp_path, tiny_backbone_config, rng):
        engine = self._served_engine(tmp_path, tiny_backbone_config)
        size = tiny_backbone_config.image_size
        with ServingFrontEnd(engine, max_batch=4, max_wait=0.05) as frontend:
            futures = [
                frontend.submit(rng.uniform(-1.0, 1.0, size=(3, size, size)))
                for _ in range(8)
            ]
            responses = [future.result(timeout=30) for future in futures]
        telemetry = frontend.telemetry()
        assert telemetry["total_requests"] == 8
        assert telemetry["rejected"] == 0
        assert telemetry["current_version"] == 1
        stats = telemetry["versions"][1]
        assert stats["requests"] == 8
        assert 1 <= stats["max_batch_size"] <= 4
        assert stats["p95_latency"] >= stats["p50_latency"] >= 0.0
        assert all(response.version == 1 for response in responses)
        assert all(response.latency >= 0.0 for response in responses)

    def test_hot_swap_under_load_drops_nothing(self, tmp_path, tiny_backbone_config, rng):
        """Concurrent publisher + clients: zero drops, only manifest versions."""
        method = _method(tiny_backbone_config)
        registry = ModelRegistry(str(tmp_path))
        _publish_model(registry, method)
        engine = InferenceEngine(registry, method)
        engine.install()
        size = tiny_backbone_config.image_size
        per_client = 30
        clients = 3
        responses, errors = [], []
        lock = threading.Lock()
        with ServingFrontEnd(engine, max_queue=1024, max_batch=4, num_workers=2) as frontend:
            def publisher():
                for _ in range(4):  # versions 2..5 -> >= 4 swaps
                    time.sleep(0.02)
                    _publish_model(registry, method)
                    frontend.notify_publish()

            def client(seed):
                local_rng = np.random.default_rng(seed)
                for _ in range(per_client):
                    try:
                        response = frontend.predict(
                            local_rng.uniform(-1.0, 1.0, size=(3, size, size)), timeout=60
                        )
                    except Exception as error:
                        with lock:
                            errors.append(error)
                        return
                    with lock:
                        responses.append(response)

            threads = [threading.Thread(target=publisher)] + [
                threading.Thread(target=client, args=(seed,)) for seed in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            telemetry = frontend.telemetry()

        assert not errors
        assert len(responses) == per_client * clients  # zero dropped
        known = {info.version for info in registry.list_versions()}
        assert {response.version for response in responses} <= known
        assert telemetry["swap_count"] >= 3
        assert telemetry["total_requests"] == per_client * clients

    def test_constructor_validation(self, tmp_path, tiny_backbone_config):
        engine = self._served_engine(tmp_path, tiny_backbone_config)
        for kwargs in (
            {"max_queue": 0},
            {"max_batch": 0},
            {"max_wait": -1.0},
            {"num_workers": 0},
        ):
            with pytest.raises(ValueError):
                ServingFrontEnd(engine, **kwargs)


# --------------------------------------------------------------------------- #
# Thread-local kernel-plane state (the serving plane's enabling fix)
# --------------------------------------------------------------------------- #

class TestThreadLocalKernelState:
    def test_tracing_does_not_leak_across_threads(self):
        """A tape active on one thread must not record another thread's ops."""
        tape = tape_mod.Tape()
        recorded_before_worker = []
        worker_error = []

        def worker():
            try:
                assert tape_mod.active_tape() is None  # not inherited
                result = Tensor(np.ones(3)) + Tensor(np.ones(3))
                np.testing.assert_array_equal(result.data, np.full(3, 2.0))
            except Exception as error:  # pragma: no cover - surfaced below
                worker_error.append(error)

        with tape_mod.tracing(tape):
            recorded_before_worker.append(len(tape.records))
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert len(tape.records) == recorded_before_worker[0]  # nothing leaked
        assert not worker_error

    def test_no_grad_is_thread_local(self):
        inner = {}

        def worker():
            x = Tensor(np.ones(2), requires_grad=True)
            inner["requires_grad"] = (x * 2.0).requires_grad

        with no_grad():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert inner["requires_grad"] is True  # worker unaffected by main's no_grad

    def test_default_dtype_is_thread_local(self):
        inner = {}

        def worker():
            inner["dtype"] = get_default_dtype()

        with default_dtype(np.dtype(np.float32)):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert get_default_dtype() == np.dtype(np.float32)
        assert inner["dtype"] == np.dtype(np.float64)


# --------------------------------------------------------------------------- #
# checkpoint_keep retention
# --------------------------------------------------------------------------- #

class TestRetention:
    def test_retain_last_policy(self):
        assert retain_last([1, 2, 3], 0) == ([1, 2, 3], [])
        assert retain_last([1, 2, 3], 5) == ([1, 2, 3], [])
        assert retain_last([1, 2, 3, 4], 2) == ([3, 4], [1, 2])
        with pytest.raises(ValueError):
            retain_last([1], -1)

    def test_prune_checkpoints_removes_oldest_resume_positions(self, tmp_path):
        from repro.federated.checkpoint import checkpoint_name

        names = [checkpoint_name(task, rnd) for task in range(2) for rnd in range(3)]
        for name in names:
            (tmp_path / name).write_bytes(b"x")
        (tmp_path / "not-a-checkpoint.txt").write_bytes(b"y")
        removed = prune_checkpoints(str(tmp_path), keep=2)
        assert sorted(os.path.basename(path) for path in removed) == sorted(names[:-2])
        survivors = sorted(
            name for name in os.listdir(tmp_path) if parse_checkpoint_name(name)
        )
        assert survivors == sorted(names[-2:])
        assert (tmp_path / "not-a-checkpoint.txt").exists()  # never touched

    def test_simulation_prunes_checkpoints(self, tiny_spec, tiny_backbone_config, tmp_path):
        config = FederatedConfig(
            increment=replace(
                FederatedConfig().increment, initial_clients=3, increment_per_task=1, seed=7
            ),
            clients_per_round=2,
            rounds_per_task=2,
            local=replace(FederatedConfig().local, local_epochs=1, batch_size=8),
            seed=7,
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
            checkpoint_keep=2,
        )
        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
        method = build_method("finetune", tiny_backbone_config, num_tasks=2)
        simulation = FederatedDomainIncrementalSimulation(scenario, method, config)
        simulation.run()
        survivors = [name for name in os.listdir(tmp_path) if parse_checkpoint_name(name)]
        assert len(survivors) == 2
        assert simulation.checkpoints_written > 2  # more were written than kept


# --------------------------------------------------------------------------- #
# Simulation integration + config plumbing
# --------------------------------------------------------------------------- #

class TestServingIntegration:
    def _config(self, tmp_path, **kwargs):
        return FederatedConfig(
            increment=replace(
                FederatedConfig().increment, initial_clients=3, increment_per_task=1, seed=7
            ),
            clients_per_round=2,
            rounds_per_task=2,
            local=replace(FederatedConfig().local, local_epochs=1, batch_size=8),
            seed=7,
            registry_dir=str(tmp_path),
            **kwargs,
        )

    def test_run_publishes_and_serves_bit_identically(
        self, tiny_spec, tiny_backbone_config, tmp_path, rng
    ):
        config = self._config(tmp_path, serve=True, publish_every=1, serve_codec="delta")
        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
        method = build_method("finetune", tiny_backbone_config, num_tasks=2)
        simulation = FederatedDomainIncrementalSimulation(scenario, method, config)
        result = simulation.run()
        registry = ModelRegistry(str(tmp_path))
        versions = registry.list_versions()
        # publish_every=1 over 2 tasks x 2 rounds, plus 2 task boundaries.
        assert [info.version for info in versions] == [1, 2, 3, 4, 5, 6]
        assert result.serving_stats["versions_published"] == 6
        assert result.serving_stats["latest_version"] == 6
        boundary = registry.info(6)
        assert (boundary.task_id, boundary.round_index) == (2, 0)
        assert boundary.accuracy  # task boundaries carry the eval snapshot
        assert versions[0].fingerprint == config_fingerprint(config)
        # Served == direct evaluation of the same version, bit for bit.
        size = tiny_backbone_config.image_size
        images = rng.uniform(-1.0, 1.0, size=(3, 3, size, size))
        engine = InferenceEngine(registry, method, kernel="tape")
        engine.install(6)
        loaded = registry.load(6, method.payload_codec())
        with default_dtype(np.dtype(np.float64)):
            model = method.build_model()
            model.load_state_dict(loaded.state)
        model.eval()
        with no_grad():
            direct = np.asarray(method.predict_logits(model, Tensor(images)).data)
        for _ in range(3):
            np.testing.assert_array_equal(engine.predict(images).logits, direct)
        # The co-running front end answered without rejects and stopped cleanly.
        assert result.serving_stats["frontend"]["rejected"] == 0
        assert simulation.serving._workers == []

    def test_serving_knobs_do_not_change_training(
        self, tiny_spec, tiny_backbone_config, tmp_path
    ):
        """Publishing + serving is observational: trained numbers are identical."""
        from repro.federated.checkpoint import simulation_state_hash

        def run(config):
            scenario = DomainIncrementalScenario(
                SyntheticDomainDataset(tiny_spec), num_tasks=2
            )
            method = build_method("finetune", tiny_backbone_config, num_tasks=2)
            simulation = FederatedDomainIncrementalSimulation(scenario, method, config)
            simulation.run()
            return simulation_state_hash(simulation)

        base = FederatedConfig(
            increment=replace(
                FederatedConfig().increment, initial_clients=3, increment_per_task=1, seed=7
            ),
            clients_per_round=2,
            rounds_per_task=1,
            local=replace(FederatedConfig().local, local_epochs=1, batch_size=8),
            seed=7,
        )
        served = replace(
            base, serve=True, publish_every=1, registry_dir=str(tmp_path), serve_codec="delta"
        )
        assert run(base) == run(served)

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="serve requires registry_dir"):
            FederatedConfig(serve=True)
        with pytest.raises(ValueError, match="publish_every requires registry_dir"):
            FederatedConfig(publish_every=2)
        with pytest.raises(ValueError, match="mode='sync'"):
            FederatedConfig(
                publish_every=1, registry_dir=str(tmp_path), mode="async", buffer_size=0
            )
        with pytest.raises(ValueError, match="checkpoint_keep"):
            FederatedConfig(checkpoint_keep=-1)
        with pytest.raises(ValueError):
            FederatedConfig(serve_codec="no-such-codec", registry_dir=str(tmp_path))

    def test_fingerprint_masks_serving_knobs(self, tmp_path):
        base = FederatedConfig()
        served = FederatedConfig(
            serve=True,
            publish_every=1,
            registry_dir=str(tmp_path),
            serve_codec="quantize8",
            checkpoint_keep=3,
        )
        assert config_fingerprint(base) == config_fingerprint(served)

    def test_run_cache_folds_serving_knobs(self, tmp_path):
        from repro.experiments.runner import _normalize_execution_knobs

        base = FederatedConfig()
        served = FederatedConfig(
            serve=True,
            publish_every=1,
            registry_dir=str(tmp_path),
            serve_codec="delta",
            checkpoint_keep=4,
        )
        assert _normalize_execution_knobs(served) == _normalize_execution_knobs(base)

    def test_scaled_config_passes_serving_knobs(self, tmp_path):
        from repro.experiments.config import ExperimentScale, scaled_config

        config = scaled_config(
            "office_caltech",
            scale=ExperimentScale.TINY,
            serve=True,
            publish_every=1,
            registry_dir=str(tmp_path),
            serve_codec="delta",
            checkpoint_keep=2,
        )
        federated = config.federated
        assert federated.serve and federated.publish_every == 1
        assert federated.registry_dir == str(tmp_path)
        assert federated.serve_codec == "delta"
        assert federated.checkpoint_keep == 2
