"""Fault plane: deterministic injection, retries, self-healing, checkpoint/resume."""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import textwrap
import zlib
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import build_method
from repro.baselines.base import BaselineConfig
from repro.baselines.finetune import FinetuneMethod
from repro.continual import DomainIncrementalScenario
from repro.datasets import SyntheticDomainDataset
from repro.federated import (
    CheckpointCorruptionError,
    CheckpointMismatchError,
    FaultInjector,
    FaultSpec,
    FederatedDomainIncrementalSimulation,
    FrameCorruptionError,
    FrameDecodeError,
    TransportError,
    WorkerDiedError,
    checkpoint_name,
    latest_checkpoint,
    load_checkpoint,
    parse_checkpoint_name,
    save_checkpoint,
    simulation_state_hash,
    verify_frame,
)
from repro.federated.communication import (
    CommunicationLedger,
    WireFrame,
    build_codec,
    encode_frame,
)
from repro.federated.config import FederatedConfig
from repro.federated.transport import LoopbackTransport, _PendingRound


def _scenario(tiny_spec, num_tasks=2):
    return DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=num_tasks)


def _build(tiny_spec, tiny_backbone_config, config, num_tasks=2, method=None):
    scenario = _scenario(tiny_spec, num_tasks=num_tasks)
    if method is None:
        method = build_method("finetune", tiny_backbone_config, num_tasks=scenario.num_tasks)
    return FederatedDomainIncrementalSimulation(scenario, method, config)


def _run(tiny_spec, tiny_backbone_config, config, num_tasks=2, method=None):
    simulation = _build(tiny_spec, tiny_backbone_config, config, num_tasks=num_tasks, method=method)
    return simulation, simulation.run()


def _matrix_bytes(simulation) -> bytes:
    return simulation.evaluator.accuracy_matrix._matrix.tobytes()


class _WorkerKiller(FinetuneMethod):
    """A method whose local update hard-exits the hosting process.

    ``os._exit`` skips every exception path, so the worker dies exactly like
    a crashed process: no result, no error message, just a corpse for the
    pool's liveness check to find.
    """

    name = "worker-killer"

    def local_update(self, model, global_state, broadcast_payload, client):
        os._exit(3)


# --------------------------------------------------------------------------- #
# FaultSpec / injector determinism
# --------------------------------------------------------------------------- #
class TestFaultSpec:
    def test_defaults_are_disabled(self):
        assert not FaultSpec().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"client_crash_rate": 0.1},
            {"upload_loss_rate": 0.1},
            {"upload_corruption_rate": 0.1},
            {"worker_kill_rate": 0.1},
            {"server_restart_every": 2},
        ],
    )
    def test_any_nonzero_knob_enables(self, kwargs):
        assert FaultSpec(**kwargs).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"client_crash_rate": -0.1},
            {"upload_loss_rate": 1.5},
            {"server_restart_every": -1},
            {"crash_fraction": 2.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)


def _query_all(injector: FaultInjector, order):
    """Run a fixed predicate program over the given coordinate order."""
    for task_id, round_index, client_id in order:
        injector.client_crashes(task_id, round_index, client_id)
        for attempt in (1, 2):
            injector.upload_lost(task_id, round_index, client_id, attempt)
            injector.upload_corrupted(task_id, round_index, client_id, attempt)
        injector.worker_to_kill(task_id, round_index, 4)
    return injector.trace


class TestInjectorDeterminism:
    COORDS = [(t, r, c) for t in range(2) for r in range(2) for c in range(3)]

    @given(
        seed=st.integers(0, 2**16),
        crash=st.floats(0.0, 1.0, allow_nan=False),
        lose=st.floats(0.0, 1.0, allow_nan=False),
        corrupt=st.floats(0.0, 1.0, allow_nan=False),
        kill=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_trace_is_pure_function_of_seed_and_spec(self, seed, crash, lose, corrupt, kill):
        spec = FaultSpec(
            client_crash_rate=crash,
            upload_loss_rate=lose,
            upload_corruption_rate=corrupt,
            worker_kill_rate=kill,
        )
        first = _query_all(FaultInjector(seed, spec), self.COORDS)
        second = _query_all(FaultInjector(seed, spec), self.COORDS)
        assert first == second

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_fired_faults_are_order_independent(self, seed):
        spec = FaultSpec(
            client_crash_rate=0.5, upload_loss_rate=0.5, upload_corruption_rate=0.5
        )
        forward = _query_all(FaultInjector(seed, spec), self.COORDS)
        backward = _query_all(FaultInjector(seed, spec), list(reversed(self.COORDS)))
        as_set = lambda trace: {tuple(sorted(entry.items())) for entry in trace}
        assert as_set(forward) == as_set(backward)

    def test_corrupt_frame_always_fails_checksum(self):
        injector = FaultInjector(3, FaultSpec(upload_corruption_rate=1.0))
        frame = encode_frame("upload", build_codec("identity"), {"w": np.arange(6.0)}, None)
        assert frame.checksum_ok()
        for attempt in range(1, 6):
            mangled = injector.corrupt_frame(frame, 0, 0, 1, attempt)
            assert not mangled.checksum_ok()
            assert mangled.num_bytes == frame.num_bytes

    def test_server_restart_is_periodic_without_rng(self):
        injector = FaultInjector(0, FaultSpec(server_restart_every=3))
        fired = [counter for counter in range(1, 10) if injector.server_restarts(counter)]
        assert fired == [3, 6, 9]
        assert injector.counters["server_restarts"] == 3

    def test_state_dict_roundtrip(self):
        spec = FaultSpec(client_crash_rate=0.9)
        injector = FaultInjector(5, spec)
        _query_all(injector, self.COORDS)
        clone = FaultInjector(5, spec)
        clone.load_state_dict(injector.state_dict())
        assert clone.trace == injector.trace
        assert clone.summary() == injector.summary()


# --------------------------------------------------------------------------- #
# Transport: retry bound, backoff, error hierarchy
# --------------------------------------------------------------------------- #
def _loopback(retries: int, backoff: float, spec: FaultSpec, seed: int = 0) -> LoopbackTransport:
    return LoopbackTransport(
        CommunicationLedger(),
        build_codec("identity"),
        retries=retries,
        retry_backoff=backoff,
        faults=FaultInjector(seed, spec),
    )


def _pending() -> _PendingRound:
    return _PendingRound(
        task_id=0, round_index=0, selected=(1,), broadcast_frames=[], received={}
    )


class TestTransportRetries:
    @given(
        seed=st.integers(0, 2**16),
        retries=st.integers(0, 4),
        lose=st.floats(0.0, 1.0, allow_nan=False),
        corrupt=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_attempts_never_exceed_bound(self, seed, retries, lose, corrupt):
        spec = FaultSpec(upload_loss_rate=lose, upload_corruption_rate=corrupt)
        transport = _loopback(retries, 0.5, spec, seed=seed)
        frame = encode_frame("upload", build_codec("identity"), {"w": np.arange(8.0)}, None)
        attempts, penalty, records, arrived = transport._transmit(1, frame, _pending())
        assert 1 <= attempts <= retries + 1
        assert len(records) == (attempts - 1 if arrived else attempts)
        assert all(record.status in ("lost", "corrupt") for record in records)
        assert penalty >= 0.0

    @given(retries=st.integers(0, 4))
    @settings(max_examples=10, deadline=None)
    def test_certain_loss_exhausts_exactly_the_bound(self, retries):
        transport = _loopback(retries, 0.25, FaultSpec(upload_loss_rate=1.0))
        frame = encode_frame("upload", build_codec("identity"), {"w": np.arange(4.0)}, None)
        attempts, penalty, records, arrived = transport._transmit(7, frame, _pending())
        assert not arrived
        assert attempts == retries + 1
        assert [record.status for record in records] == ["lost"] * (retries + 1)
        # Exponential backoff between attempts: 0.25 * (1 + 2 + ... + 2^(r-1)).
        assert penalty == pytest.approx(0.25 * (2.0**retries - 1.0))

    def test_zero_fault_transmit_is_a_single_clean_attempt(self):
        transport = _loopback(3, 0.5, FaultSpec(client_crash_rate=0.5))  # no frame faults
        frame = encode_frame("upload", build_codec("identity"), {"w": np.arange(4.0)}, None)
        assert transport._transmit(1, frame, _pending()) == (1, 0.0, [], True)


class TestTransportErrors:
    def test_verify_frame_raises_with_coordinates(self):
        frame = encode_frame("upload", build_codec("identity"), {"w": np.arange(4.0)}, None)
        body = bytearray(frame.body)
        body[0] ^= 0xFF
        mangled = WireFrame(
            kind=frame.kind, codec=frame.codec, body=bytes(body), checksum=frame.checksum
        )
        with pytest.raises(FrameCorruptionError) as excinfo:
            verify_frame(mangled, client_id=4, direction="upload", task_id=1, round_index=2)
        error = excinfo.value
        assert isinstance(error, TransportError)
        assert (error.client_id, error.direction) == (4, "upload")
        assert (error.task_id, error.round_index) == (1, 2)
        assert "client_id=4" in str(error)

    def test_clean_frame_passes(self):
        frame = encode_frame("upload", build_codec("identity"), {"w": np.arange(4.0)}, None)
        verify_frame(frame, client_id=0, direction="upload")

    def test_undecodable_frame_raises_decode_error_with_context(self):
        garbage = b"certainly not a pickle"
        frame = WireFrame(
            kind="upload", codec="identity", body=garbage, checksum=zlib.crc32(garbage)
        )
        with pytest.raises(FrameDecodeError) as excinfo:
            LoopbackTransport._decode_frame_checked(
                frame,
                build_codec("identity"),
                None,
                client_id=9,
                direction="upload",
                task_id=0,
                round_index=1,
            )
        assert excinfo.value.client_id == 9
        assert excinfo.value.direction == "upload"
        assert isinstance(excinfo.value, TransportError)


# --------------------------------------------------------------------------- #
# Zero-fault / checkpoint-off inertness
# --------------------------------------------------------------------------- #
class TestZeroFaultParity:
    def test_fault_knobs_are_inert_when_disabled(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, tmp_path
    ):
        """Changing retry knobs and turning checkpointing on must not move a bit."""
        base_cfg = replace(tiny_federated_config, rounds_per_task=2)
        baseline_sim, baseline = _run(tiny_spec, tiny_backbone_config, base_cfg)
        knobs_cfg = replace(
            base_cfg,
            retries=7,
            retry_backoff=3.0,
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        knobs_sim, knobs = _run(tiny_spec, tiny_backbone_config, knobs_cfg)
        assert simulation_state_hash(baseline_sim) == simulation_state_hash(knobs_sim)
        assert _matrix_bytes(baseline_sim) == _matrix_bytes(knobs_sim)
        assert baseline.round_losses == knobs.round_losses
        assert baseline.event_log == knobs.event_log
        assert baseline.fault_stats == {}
        assert knobs.fault_stats["checkpoints_written"] > 0

    def test_worker_kills_heal_bit_for_bit(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        """A killed-and-respawned worker replays its chunk with identical results."""
        base_cfg = replace(
            tiny_federated_config, rounds_per_task=2, executor="parallel", num_workers=2
        )
        clean_sim, clean = _run(tiny_spec, tiny_backbone_config, base_cfg)
        faulty_cfg = replace(base_cfg, faults=FaultSpec(worker_kill_rate=1.0))
        faulty_sim, faulty = _run(tiny_spec, tiny_backbone_config, faulty_cfg)
        assert faulty.fault_stats["workers_killed"] > 0
        assert faulty.fault_stats["worker_respawns"] > 0
        assert simulation_state_hash(clean_sim) == simulation_state_hash(faulty_sim)
        assert _matrix_bytes(clean_sim) == _matrix_bytes(faulty_sim)
        assert clean.round_losses == faulty.round_losses

    def test_server_restarts_are_lossless_under_delta_codec(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        """Restarts wipe delta acks (dense re-broadcasts) but never the numbers."""
        base_cfg = replace(tiny_federated_config, rounds_per_task=2, codec="delta")
        clean_sim, _ = _run(tiny_spec, tiny_backbone_config, base_cfg)
        restart_cfg = replace(base_cfg, faults=FaultSpec(server_restart_every=1))
        restart_sim, restarted = _run(tiny_spec, tiny_backbone_config, restart_cfg)
        assert restarted.fault_stats["server_restarts"] > 0
        assert any(event["kind"] == "server_restart" for event in restarted.event_log)
        assert simulation_state_hash(clean_sim) == simulation_state_hash(restart_sim)


# --------------------------------------------------------------------------- #
# Fault trajectories are deterministic per seed
# --------------------------------------------------------------------------- #
class TestFaultedRunsAreDeterministic:
    def test_sync_crash_and_corruption_replay_identically(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        config = replace(
            tiny_federated_config,
            rounds_per_task=2,
            faults=FaultSpec(client_crash_rate=0.5, upload_corruption_rate=0.4),
            retries=2,
            retry_backoff=0.5,
        )
        first_sim, first = _run(tiny_spec, tiny_backbone_config, config)
        second_sim, second = _run(tiny_spec, tiny_backbone_config, config)
        assert first.fault_stats["client_crashes"] > 0
        assert any(event["kind"] == "client_crash" for event in first.event_log)
        assert first.event_log == second.event_log
        assert first.fault_stats == second.fault_stats
        assert simulation_state_hash(first_sim) == simulation_state_hash(second_sim)
        assert _matrix_bytes(first_sim) == _matrix_bytes(second_sim)

    @pytest.mark.parametrize("mode", ["async", "buffered"])
    def test_temporal_plane_crash_and_rejoin_events(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, mode
    ):
        config = replace(
            tiny_federated_config,
            rounds_per_task=2,
            mode=mode,
            device_profile="homogeneous",
            faults=FaultSpec(client_crash_rate=0.5),
        )
        first_sim, first = _run(tiny_spec, tiny_backbone_config, config)
        kinds = [event["kind"] for event in first.event_log]
        assert "client_crash" in kinds
        assert "client_rejoin" in kinds
        assert first.fault_stats["client_crashes"] == kinds.count("client_crash")
        second_sim, second = _run(tiny_spec, tiny_backbone_config, config)
        assert first.event_log == second.event_log
        assert simulation_state_hash(first_sim) == simulation_state_hash(second_sim)


# --------------------------------------------------------------------------- #
# Worker death without the fault plane
# --------------------------------------------------------------------------- #
class TestWorkerDeath:
    def test_dead_worker_raises_typed_error_with_pending_clients(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        config = replace(tiny_federated_config, executor="parallel", num_workers=2)
        method = _WorkerKiller(BaselineConfig(backbone=tiny_backbone_config))
        simulation = _build(tiny_spec, tiny_backbone_config, config, method=method)
        with pytest.raises(WorkerDiedError) as excinfo:
            simulation.run()
        error = excinfo.value
        assert error.worker_ids
        assert error.client_ids  # the chunk's clients are named in the failure
        assert "pending client ids" in str(error)
        # close() is idempotent and safe after the failure (run() already
        # closed once on its error path).
        simulation.close()
        simulation.close()


# --------------------------------------------------------------------------- #
# Checkpoint file format
# --------------------------------------------------------------------------- #
class TestCheckpointFormat:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / checkpoint_name(1, 2))
        payload = {"hello": np.arange(5.0), "nested": {"a": 1}}
        save_checkpoint(path, payload)
        loaded = load_checkpoint(path)
        np.testing.assert_array_equal(loaded["hello"], payload["hello"])
        assert loaded["nested"] == {"a": 1}
        assert not os.path.exists(path + ".tmp")

    def test_name_encodes_resume_position(self):
        assert parse_checkpoint_name(checkpoint_name(3, 14)) == (3, 14)
        assert parse_checkpoint_name("not-a-checkpoint.bin") is None

    def test_latest_picks_furthest_position(self, tmp_path):
        for position in [(0, 1), (1, 0), (0, 2)]:
            save_checkpoint(str(tmp_path / checkpoint_name(*position)), {"p": position})
        latest = latest_checkpoint(str(tmp_path))
        assert latest is not None and latest.endswith(checkpoint_name(1, 0))
        assert latest_checkpoint(str(tmp_path / "missing")) is None

    @pytest.mark.parametrize("mutation", ["truncate", "flip", "magic"])
    def test_corruption_is_detected(self, tmp_path, mutation):
        path = str(tmp_path / checkpoint_name(0, 1))
        save_checkpoint(path, {"x": 1})
        raw = bytearray(open(path, "rb").read())
        if mutation == "truncate":
            raw = raw[: len(raw) // 2]
        elif mutation == "flip":
            raw[-1] ^= 0xFF
        else:
            raw[:4] = b"XXXX"
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        with pytest.raises(CheckpointCorruptionError):
            load_checkpoint(path)


# --------------------------------------------------------------------------- #
# Checkpoint -> resume equals uninterrupted, across modes
# --------------------------------------------------------------------------- #
class TestCheckpointResume:
    @pytest.mark.parametrize("mode", ["sync", "async", "buffered"])
    def test_resume_matches_uninterrupted(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, tmp_path, mode
    ):
        full_dir = tmp_path / "full"
        config = replace(
            tiny_federated_config,
            rounds_per_task=2,
            mode=mode,
            checkpoint_every=1 if mode == "sync" else 0,
            checkpoint_dir=str(full_dir),
        )
        full_sim, full = _run(tiny_spec, tiny_backbone_config, config)
        full_hash = simulation_state_hash(full_sim)

        # Keep only the earliest snapshot: the resumed run must re-train
        # everything after it and still land on the same bits.
        names = sorted(os.listdir(full_dir), key=parse_checkpoint_name)
        assert len(names) >= 2
        resume_dir = tmp_path / "resume"
        resume_dir.mkdir()
        shutil.copy(full_dir / names[0], resume_dir / names[0])

        resumed_cfg = replace(config, checkpoint_dir=str(resume_dir), resume=True)
        resumed_sim, resumed = _run(tiny_spec, tiny_backbone_config, resumed_cfg)
        assert resumed.fault_stats["resumed_from"] is not None
        assert simulation_state_hash(resumed_sim) == full_hash
        assert _matrix_bytes(resumed_sim) == _matrix_bytes(full_sim)
        assert resumed.round_losses == full.round_losses
        assert resumed.event_log == full.event_log

    def test_resume_from_empty_directory_starts_fresh(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, tmp_path
    ):
        config = replace(
            tiny_federated_config,
            checkpoint_dir=str(tmp_path / "empty"),
            resume=True,
        )
        plain_sim, _ = _run(tiny_spec, tiny_backbone_config, tiny_federated_config)
        fresh_sim, fresh = _run(tiny_spec, tiny_backbone_config, config)
        assert fresh.fault_stats.get("resumed_from") is None
        assert simulation_state_hash(plain_sim) == simulation_state_hash(fresh_sim)

    def test_fingerprint_mismatch_refuses_to_resume(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, tmp_path
    ):
        directory = str(tmp_path / "ckpt")
        config = replace(tiny_federated_config, checkpoint_dir=directory)
        _run(tiny_spec, tiny_backbone_config, config)
        mismatched = replace(config, seed=config.seed + 1, resume=True)
        simulation = _build(tiny_spec, tiny_backbone_config, mismatched)
        with pytest.raises(CheckpointMismatchError):
            simulation.run()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FederatedConfig(checkpoint_every=1)  # needs checkpoint_dir
        with pytest.raises(ValueError):
            FederatedConfig(resume=True)  # needs checkpoint_dir
        with pytest.raises(ValueError):
            FederatedConfig(checkpoint_every=1, checkpoint_dir="x", mode="async")
        with pytest.raises(ValueError):
            FederatedConfig(transport="direct", faults=FaultSpec(upload_loss_rate=0.5))
        with pytest.raises(ValueError):
            FederatedConfig(retries=-1)


# --------------------------------------------------------------------------- #
# kill -9 mid-run, relaunch with resume=True (the acceptance scenario)
# --------------------------------------------------------------------------- #
_KILL_SCRIPT = textwrap.dedent(
    """
    import os, sys

    mode, ckpt_dir = sys.argv[1], sys.argv[2]

    from repro.baselines import build_method
    from repro.continual import DomainIncrementalScenario
    from repro.datasets import SyntheticDomainDataset
    from repro.datasets.registry import get_dataset_spec
    from repro.federated import FederatedDomainIncrementalSimulation, simulation_state_hash
    from repro.federated.client import LocalTrainingConfig
    from repro.federated.config import FederatedConfig
    from repro.federated.increment import ClientIncrementConfig
    from repro.models.backbone import BackboneConfig

    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=24, test_per_domain=12, num_classes=3
    )
    backbone = BackboneConfig(
        image_size=spec.image_size, num_classes=spec.num_classes,
        base_width=4, embed_dim=16, num_heads=2, seed=7,
    )
    config = FederatedConfig(
        increment=ClientIncrementConfig(
            initial_clients=3, increment_per_task=1, transfer_fraction=0.8, seed=7
        ),
        clients_per_round=2,
        rounds_per_task=2,
        local=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05),
        seed=7,
        checkpoint_every=1 if ckpt_dir else 0,
        checkpoint_dir=ckpt_dir,
        resume=bool(ckpt_dir) and mode == "run",
    )
    scenario = DomainIncrementalScenario(SyntheticDomainDataset(spec), num_tasks=2)
    method = build_method("finetune", backbone, num_tasks=scenario.num_tasks)
    sim = FederatedDomainIncrementalSimulation(scenario, method, config)

    if mode == "crash":
        original = sim._write_checkpoint
        written = {"count": 0}

        def dying_write(start_task, start_round):
            original(start_task, start_round)
            written["count"] += 1
            if written["count"] >= 3:
                os.kill(os.getpid(), 9)  # SIGKILL: no cleanup, no excuses

        sim._write_checkpoint = dying_write

    sim.run()
    print("RESUMED", sim._resumed_from)
    print("HASH", simulation_state_hash(sim))
    print("MATRIX", sim.evaluator.accuracy_matrix._matrix.tobytes().hex())
    """
)


def _run_child(script_path, mode, ckpt_dir):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, script_path, mode, ckpt_dir],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


def _parse_output(stdout):
    values = {}
    for line in stdout.splitlines():
        parts = line.split(" ", 1)
        if len(parts) == 2 and parts[0] in ("RESUMED", "HASH", "MATRIX"):
            values[parts[0]] = parts[1]
    return values


class TestKillAndResume:
    def test_sigkill_then_resume_reproduces_the_run(self, tmp_path):
        script_path = str(tmp_path / "kill_resume_run.py")
        with open(script_path, "w") as handle:
            handle.write(_KILL_SCRIPT)
        ckpt_dir = str(tmp_path / "ckpt")

        crashed = _run_child(script_path, "crash", ckpt_dir)
        assert crashed.returncode == -9, crashed.stderr  # died by SIGKILL mid-run
        assert os.listdir(ckpt_dir)  # checkpoints survived the kill

        resumed = _run_child(script_path, "run", ckpt_dir)
        assert resumed.returncode == 0, resumed.stderr
        resumed_values = _parse_output(resumed.stdout)
        assert resumed_values["RESUMED"] != "None"

        reference = _run_child(script_path, "run", "")
        assert reference.returncode == 0, reference.stderr
        reference_values = _parse_output(reference.stdout)

        assert resumed_values["HASH"] == reference_values["HASH"]
        assert resumed_values["MATRIX"] == reference_values["MATRIX"]
