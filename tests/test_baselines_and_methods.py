"""Tests for the baseline methods, the RefFiL method object and the method registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.baselines import (
    BaselineConfig,
    FedDualPromptMethod,
    FedEWCMethod,
    FedL2PMethod,
    FedLwFMethod,
    FinetuneMethod,
    PromptPool,
    PromptPoolConfig,
    available_methods,
    build_method,
)
from repro.baselines.prompt_pool import SinglePrompt
from repro.core import RefFiLConfig, RefFiLMethod
from repro.core.dpcl import DPCLConfig
from repro.datasets.synthetic import generate_domain_split
from repro.federated.client import ClientHandle, LocalTrainingConfig
from repro.federated.increment import ClientGroup
from repro.federated.server import FederatedServer

RNG = np.random.default_rng(31)


def _client(tiny_spec, task_id=0, group=ClientGroup.NEW, epochs=1, final_round=True):
    data = generate_domain_split(tiny_spec, min(task_id, tiny_spec.num_domains - 1), "train")
    return ClientHandle(
        client_id=0,
        task_id=task_id,
        group=group,
        dataset=data,
        rng=np.random.default_rng(0),
        training=LocalTrainingConfig(local_epochs=epochs, batch_size=8, learning_rate=0.05),
        metadata={"round_index": 0.0 if not final_round else 0.0, "rounds_per_task": 1.0},
    )


class TestPromptPool:
    def test_selection_shapes_and_histogram(self):
        pool = PromptPool(PromptPoolConfig(pool_size=5, prompt_length=2, embed_dim=8, top_k=2))
        query = Tensor(RNG.standard_normal((3, 8)))
        tokens, pull, indices = pool.select(query)
        assert tokens.shape == (3, 4, 8)
        assert pull.data.size == 1
        assert indices.shape == (3, 2)
        assert pool.selection_histogram(indices).sum() == 6

    def test_query_validation(self):
        pool = PromptPool(PromptPoolConfig(pool_size=3, prompt_length=1, embed_dim=8, top_k=1))
        with pytest.raises(ValueError):
            pool.select(Tensor(RNG.standard_normal((3, 4))))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PromptPoolConfig(pool_size=0)
        with pytest.raises(ValueError):
            PromptPoolConfig(pool_size=2, top_k=5)

    def test_similar_queries_pick_same_prompt(self):
        pool = PromptPool(PromptPoolConfig(pool_size=4, prompt_length=1, embed_dim=6, top_k=1))
        base = RNG.standard_normal(6)
        queries = Tensor(np.stack([base, base + 0.001]))
        _, _, indices = pool.select(queries)
        assert indices[0, 0] == indices[1, 0]

    def test_single_prompt_broadcast(self):
        single = SinglePrompt(prompt_length=3, embed_dim=8)
        assert single.tokens(5).shape == (5, 3, 8)


class TestBaselineLocalUpdates:
    @pytest.fixture
    def backbone_config(self, tiny_backbone_config):
        return tiny_backbone_config

    def _run_one_update(self, method, tiny_spec):
        model = method.build_model()
        server = FederatedServer(model)
        client = _client(tiny_spec)
        update = method.local_update(model, server.broadcast(), server.broadcast_payload, client)
        return model, server, update

    def test_finetune_update_produces_valid_state(self, backbone_config, tiny_spec):
        method = FinetuneMethod(BaselineConfig(backbone=backbone_config))
        model, server, update = self._run_one_update(method, tiny_spec)
        assert update.num_samples == tiny_spec.train_per_domain
        assert update.train_loss > 0
        assert set(update.state_dict) == set(server.global_state)
        method.aggregate(server, [update])
        assert server.round_counter == 1

    def test_finetune_predict_logits_shape(self, backbone_config, tiny_spec):
        method = FinetuneMethod(BaselineConfig(backbone=backbone_config))
        model = method.build_model()
        logits = method.predict_logits(model, Tensor(RNG.standard_normal((2, 3, 16, 16))))
        assert logits.shape == (2, backbone_config.num_classes)

    def test_fedlwf_teacher_lifecycle(self, backbone_config, tiny_spec):
        method = FedLwFMethod(BaselineConfig(backbone=backbone_config), distillation_weight=0.5)
        model = method.build_model()
        server = FederatedServer(model)
        assert not method.has_teacher
        method.on_task_start(0, server)
        assert not method.has_teacher  # no teacher for the first task
        method.on_task_start(1, server)
        assert method.has_teacher
        client = _client(tiny_spec, task_id=1)
        update = method.local_update(model, server.broadcast(), {}, client)
        assert update.train_loss > 0

    def test_fedlwf_validation(self, backbone_config):
        with pytest.raises(ValueError):
            FedLwFMethod(BaselineConfig(backbone=backbone_config), distillation_weight=-1.0)

    def test_fedewc_fisher_and_penalty(self, backbone_config, tiny_spec):
        method = FedEWCMethod(BaselineConfig(backbone=backbone_config), constraint=10.0, fisher_batches=1)
        model = method.build_model()
        server = FederatedServer(model)
        client = _client(tiny_spec)
        update = method.local_update(model, server.broadcast(), {}, client)
        assert "fisher" in update.payload
        assert all(np.all(v >= 0) for v in update.payload["fisher"].values())
        method.aggregate(server, [update])
        assert method.has_penalty
        # Subsequent local updates should include the (finite) penalty without crashing.
        second = method.local_update(model, server.broadcast(), {}, _client(tiny_spec, task_id=1))
        assert np.isfinite(second.train_loss)

    def test_fedl2p_pool_variant_names(self, backbone_config):
        plain = FedL2PMethod(BaselineConfig(backbone=backbone_config), use_pool=False)
        pooled = FedL2PMethod(BaselineConfig(backbone=backbone_config), use_pool=True)
        assert plain.name == "FedL2P" and pooled.name == "FedL2P†"
        assert plain.build_model().pool is None
        assert pooled.build_model().pool is not None

    def test_fedl2p_local_update_and_predict(self, backbone_config, tiny_spec):
        method = FedL2PMethod(BaselineConfig(backbone=backbone_config), use_pool=True)
        model, server, update = self._run_one_update(method, tiny_spec)
        assert update.train_loss > 0
        logits = method.predict_logits(model, Tensor(RNG.standard_normal((2, 3, 16, 16))))
        assert logits.shape == (2, backbone_config.num_classes)

    def test_feddualprompt_task_and_inference_paths(self, backbone_config, tiny_spec):
        method = FedDualPromptMethod(
            BaselineConfig(backbone=backbone_config), num_tasks=3, use_expert_bank=True
        )
        model, server, update = self._run_one_update(method, tiny_spec)
        assert update.train_loss > 0
        logits = method.predict_logits(model, Tensor(RNG.standard_normal((2, 3, 16, 16))))
        assert logits.shape == (2, backbone_config.num_classes)

    def test_feddualprompt_without_bank(self, backbone_config, tiny_spec):
        method = FedDualPromptMethod(
            BaselineConfig(backbone=backbone_config), num_tasks=3, use_expert_bank=False
        )
        model = method.build_model()
        assert model.expert_prompts is None and model.shared_expert is not None
        assert method.name == "FedDualPrompt"


class TestRefFiLMethod:
    def test_dpcl_requires_prompt_machinery(self, tiny_backbone_config):
        with pytest.raises(ValueError):
            RefFiLMethod(
                RefFiLConfig(
                    backbone=tiny_backbone_config, use_cdap=False, use_gpl=False, use_dpcl=True
                )
            )

    def test_name_reflects_ablation(self, tiny_backbone_config):
        full = RefFiLMethod(RefFiLConfig(backbone=tiny_backbone_config))
        assert full.name == "RefFiL"
        partial = RefFiLMethod(
            RefFiLConfig(backbone=tiny_backbone_config, use_cdap=True, use_gpl=False, use_dpcl=False)
        )
        assert "CDAP" in partial.name

    def test_local_update_uploads_prompt_groups(self, tiny_backbone_config, tiny_spec):
        method = RefFiLMethod(RefFiLConfig(backbone=tiny_backbone_config, prompt_length=3, max_tasks=4))
        model = method.build_model()
        server = FederatedServer(model)
        client = _client(tiny_spec)
        update = method.local_update(model, server.broadcast(), server.broadcast_payload, client)
        groups = update.payload["prompt_groups"]
        assert groups
        assert all(np.asarray(v).shape == (tiny_backbone_config.embed_dim,) for v in groups.values())

    def test_aggregate_populates_store_and_broadcast(self, tiny_backbone_config, tiny_spec):
        method = RefFiLMethod(RefFiLConfig(backbone=tiny_backbone_config, prompt_length=3, max_tasks=4))
        model = method.build_model()
        server = FederatedServer(model)
        update = method.local_update(model, server.broadcast(), {}, _client(tiny_spec))
        method.aggregate(server, [update])
        assert not method.prompt_aggregator.store.is_empty
        assert server.broadcast_payload
        # A second local update must be able to consume the broadcast payload.
        second = method.local_update(model, server.broadcast(), server.broadcast_payload, _client(tiny_spec, task_id=1))
        assert np.isfinite(second.train_loss)

    def test_predict_logits_shapes(self, tiny_backbone_config):
        method = RefFiLMethod(RefFiLConfig(backbone=tiny_backbone_config, prompt_length=3, max_tasks=4))
        model = method.build_model()
        logits = method.predict_logits(model, Tensor(RNG.standard_normal((2, 3, 16, 16))))
        assert logits.shape == (2, tiny_backbone_config.num_classes)

    def test_ablated_gpl_only_predicts_without_cdap(self, tiny_backbone_config, tiny_spec):
        method = RefFiLMethod(
            RefFiLConfig(backbone=tiny_backbone_config, use_cdap=False, use_gpl=True, use_dpcl=False)
        )
        model = method.build_model()
        server = FederatedServer(model)
        update = method.local_update(model, server.broadcast(), {}, _client(tiny_spec))
        method.aggregate(server, [update])
        logits = method.predict_logits(model, Tensor(RNG.standard_normal((2, 3, 16, 16))))
        assert logits.shape == (2, tiny_backbone_config.num_classes)


class TestRegistry:
    def test_all_names_buildable(self, tiny_backbone_config):
        for name in available_methods():
            method = build_method(name, tiny_backbone_config, num_tasks=3)
            assert method.build_model() is not None

    def test_unknown_name_raises(self, tiny_backbone_config):
        with pytest.raises(KeyError):
            build_method("fedprox", tiny_backbone_config, num_tasks=2)

    def test_dpcl_override_reaches_refil(self, tiny_backbone_config):
        dpcl = DPCLConfig(tau=0.5, tau_min=0.2, gamma=0.15, beta=0.1)
        method = build_method("refil", tiny_backbone_config, num_tasks=2, dpcl=dpcl)
        assert method.config.dpcl.tau == pytest.approx(0.5)

    def test_registry_covers_paper_rows(self):
        names = available_methods()
        for required in ("finetune", "fedlwf", "fedewc", "fedl2p", "fedl2p_pool",
                         "feddualprompt", "feddualprompt_pool", "refil"):
            assert required in names
