"""Gradient checks and behavioural tests for the neural-network functionals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.autograd.grad_check import check_gradient, numerical_gradient

RNG = np.random.default_rng(42)


class TestActivations:
    def test_relu_matches_numpy(self):
        x = RNG.standard_normal((3, 4))
        assert np.allclose(F.relu(Tensor(x)).data, np.maximum(x, 0))

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.standard_normal((5, 7)))
        probs = F.softmax(x).data
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_invariant_to_shift(self):
        x = RNG.standard_normal((2, 4))
        assert np.allclose(F.softmax(Tensor(x)).data, F.softmax(Tensor(x + 100.0)).data)

    def test_log_softmax_is_log_of_softmax(self):
        x = Tensor(RNG.standard_normal((3, 6)))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-8)

    def test_gelu_close_to_identity_for_large_positive(self):
        x = Tensor(np.array([5.0]))
        assert F.gelu(x).data == pytest.approx(5.0, abs=1e-3)

    def test_gelu_gradient(self):
        x = Tensor(RNG.standard_normal((3, 3)), requires_grad=True)
        assert check_gradient(lambda t: F.gelu(t).sum(), [x])


class TestLinearAndNorm:
    def test_linear_matches_manual(self):
        x, w, b = RNG.standard_normal((4, 3)), RNG.standard_normal((5, 3)), RNG.standard_normal(5)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        assert np.allclose(out.data, x @ w.T + b)

    def test_layer_norm_zero_mean_unit_var(self):
        x = Tensor(RNG.standard_normal((6, 16)))
        normed = F.layer_norm(x).data
        assert np.allclose(normed.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(normed.std(axis=-1), 1.0, atol=1e-2)

    def test_layer_norm_gradcheck(self):
        x = Tensor(RNG.standard_normal((2, 3, 8)), requires_grad=True)
        w = Tensor(RNG.standard_normal(8), requires_grad=True)
        b = Tensor(RNG.standard_normal(8), requires_grad=True)
        assert check_gradient(lambda x, w, b: F.layer_norm(x, w, b).sum(), [x, w, b], wrt=0)
        assert check_gradient(lambda x, w, b: F.layer_norm(x, w, b).sum(), [x, w, b], wrt=1)

    def test_batch_norm_training_normalises(self):
        x = Tensor(RNG.standard_normal((8, 4, 5, 5)) * 3 + 2)
        weight, bias = Tensor(np.ones(4)), Tensor(np.zeros(4))
        running_mean, running_var = np.zeros(4), np.ones(4)
        out = F.batch_norm_2d(x, weight, bias, running_mean, running_var, training=True)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        assert not np.allclose(running_mean, 0.0)

    def test_batch_norm_eval_uses_running_stats(self):
        x = Tensor(RNG.standard_normal((4, 2, 3, 3)))
        weight, bias = Tensor(np.ones(2)), Tensor(np.zeros(2))
        running_mean, running_var = np.array([5.0, -5.0]), np.array([1.0, 1.0])
        out = F.batch_norm_2d(x, weight, bias, running_mean, running_var, training=False)
        assert np.allclose(out.data[:, 0], x.data[:, 0] - 5.0, atol=1e-2)

    def test_l2_normalize_unit_norm(self):
        x = Tensor(RNG.standard_normal((5, 8)))
        norms = np.linalg.norm(F.l2_normalize(x).data, axis=-1)
        assert np.allclose(norms, 1.0)

    def test_cosine_similarity_bounds_and_self(self):
        x = Tensor(RNG.standard_normal((4, 6)))
        sims = F.cosine_similarity(x, x).data
        assert np.allclose(sims, 1.0)
        y = Tensor(-x.data)
        assert np.allclose(F.cosine_similarity(x, y).data, -1.0)

    def test_cosine_similarity_gradcheck(self):
        a = Tensor(RNG.standard_normal((3, 5)), requires_grad=True)
        b = Tensor(RNG.standard_normal((3, 5)), requires_grad=True)
        assert check_gradient(lambda a, b: F.cosine_similarity(a, b).sum(), [a, b], wrt=0)
        assert check_gradient(lambda a, b: F.cosine_similarity(a, b).sum(), [a, b], wrt=1)


class TestConvolutionAndPooling:
    def test_conv2d_output_shape(self):
        x = Tensor(RNG.standard_normal((2, 3, 8, 8)))
        w = Tensor(RNG.standard_normal((5, 3, 3, 3)))
        assert F.conv2d(x, w, stride=1, padding=1).shape == (2, 5, 8, 8)
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4)
        assert F.conv2d(x, w, stride=1, padding=0).shape == (2, 5, 6, 6)

    def test_conv2d_channel_mismatch_raises(self):
        x = Tensor(RNG.standard_normal((1, 2, 4, 4)))
        w = Tensor(RNG.standard_normal((3, 5, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_conv2d_matches_direct_computation(self):
        x = RNG.standard_normal((1, 1, 3, 3))
        w = RNG.standard_normal((1, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=0)
        assert out.data[0, 0, 0, 0] == pytest.approx(float((x[0, 0] * w[0, 0]).sum()))

    def test_conv2d_gradcheck_all_inputs(self):
        x = Tensor(RNG.standard_normal((2, 2, 5, 5)), requires_grad=True)
        w = Tensor(RNG.standard_normal((3, 2, 3, 3)), requires_grad=True)
        b = Tensor(RNG.standard_normal(3), requires_grad=True)
        fn = lambda x, w, b: F.conv2d(x, w, b, stride=2, padding=1).sum()
        assert check_gradient(fn, [x, w, b], wrt=0)
        assert check_gradient(fn, [x, w, b], wrt=1)
        assert check_gradient(fn, [x, w, b], wrt=2)

    def test_max_pool_shape_and_value(self):
        data = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pooled = F.max_pool2d(Tensor(data), 2)
        assert pooled.shape == (1, 1, 2, 2)
        assert np.allclose(pooled.data[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_value(self):
        data = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pooled = F.avg_pool2d(Tensor(data), 2)
        assert np.allclose(pooled.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_pool_gradchecks(self):
        x = Tensor(RNG.standard_normal((2, 3, 6, 6)), requires_grad=True)
        assert check_gradient(lambda x: F.max_pool2d(x, 2).sum(), [x])
        assert check_gradient(lambda x: F.avg_pool2d(x, 2).sum(), [x])

    def test_global_avg_pool(self):
        x = RNG.standard_normal((2, 3, 4, 4))
        assert np.allclose(F.global_avg_pool2d(Tensor(x)).data, x.mean(axis=(2, 3)))


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = RNG.standard_normal((4, 3))
        targets = np.array([0, 1, 2, 1])
        log_probs = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(4), targets].mean()
        assert F.cross_entropy(Tensor(logits), targets).data == pytest.approx(expected)

    def test_cross_entropy_reductions(self):
        logits = Tensor(RNG.standard_normal((4, 3)))
        targets = np.array([0, 1, 2, 1])
        none = F.cross_entropy(logits, targets, reduction="none")
        assert none.shape == (4,)
        assert F.cross_entropy(logits, targets, reduction="sum").data == pytest.approx(
            none.data.sum()
        )
        with pytest.raises(ValueError):
            F.nll_loss(F.log_softmax(logits), targets, reduction="bogus")

    def test_cross_entropy_gradcheck(self):
        logits = Tensor(RNG.standard_normal((5, 4)), requires_grad=True)
        targets = RNG.integers(0, 4, 5)
        assert check_gradient(lambda l: F.cross_entropy(l, targets), [logits])

    def test_perfect_prediction_loss_near_zero(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        assert F.cross_entropy(Tensor(logits), np.array([1, 2])).data == pytest.approx(0.0, abs=1e-6)

    def test_soft_cross_entropy_matches_hard_on_onehot(self):
        logits = Tensor(RNG.standard_normal((3, 4)))
        targets = np.array([1, 0, 3])
        onehot = Tensor(np.eye(4)[targets])
        assert F.soft_cross_entropy(logits, onehot).data == pytest.approx(
            float(F.cross_entropy(logits, targets).data)
        )

    def test_kd_loss_zero_when_identical(self):
        logits = Tensor(RNG.standard_normal((4, 5)))
        loss = F.knowledge_distillation_loss(logits, logits, temperature=2.0)
        probs = F.softmax(logits / 2.0).data
        entropy = -(probs * np.log(probs)).sum(axis=1).mean() * 4.0
        assert loss.data == pytest.approx(entropy, rel=1e-6)

    def test_kd_loss_decreases_as_student_approaches_teacher(self):
        teacher = Tensor(np.array([[4.0, 0.0, 0.0]]))
        far = Tensor(np.array([[0.0, 4.0, 0.0]]))
        near = Tensor(np.array([[3.0, 0.5, 0.0]]))
        assert F.knowledge_distillation_loss(near, teacher).data < F.knowledge_distillation_loss(
            far, teacher
        ).data

    def test_mse_loss(self):
        a, b = Tensor(np.array([1.0, 2.0])), Tensor(np.array([2.0, 4.0]))
        assert F.mse_loss(a, b).data == pytest.approx(2.5)
        assert F.mse_loss(a, b, reduction="sum").data == pytest.approx(5.0)

    def test_embedding_lookup(self):
        table = Tensor(np.arange(12, dtype=float).reshape(4, 3), requires_grad=True)
        out = F.embedding(table, np.array([1, 1, 3]))
        assert np.allclose(out.data[0], [3, 4, 5])
        out.sum().backward()
        assert table.grad[1].sum() == pytest.approx(6.0)
        assert table.grad[0].sum() == pytest.approx(0.0)


class TestDropout:
    def test_dropout_eval_is_identity(self):
        x = Tensor(RNG.standard_normal((10, 10)))
        assert np.allclose(F.dropout(x, 0.5, training=False).data, x.data)

    def test_dropout_training_zeroes_and_rescales(self):
        x = Tensor(np.ones((200, 50)))
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0)).data
        fraction_zero = (out == 0).mean()
        assert 0.4 < fraction_zero < 0.6
        assert out.mean() == pytest.approx(1.0, abs=0.05)


class TestNumericalGradientHelper:
    def test_numerical_gradient_of_square(self):
        x = Tensor(np.array([2.0, -3.0]))
        grad = numerical_gradient(lambda t: (t * t).sum(), [x])
        assert np.allclose(grad, [4.0, -6.0], atol=1e-4)


class TestEveryOpGradCheck:
    """Systematic float64 finite-difference sweep over ``functional.__all__``.

    Every differentiable functional gets at least one check against its
    numerical gradient; ops with kinks (relu, max_pool) use inputs bounded
    away from the kink so the finite difference is well defined, and
    stateful ops (dropout, batch_norm) rebuild their state inside the
    closure so repeated evaluations are deterministic.
    """

    def _rand(self, *shape):
        return Tensor(RNG.standard_normal(shape), requires_grad=True)

    def test_relu(self):
        x = RNG.standard_normal((4, 5))
        x = Tensor(x + 0.2 * np.sign(x), requires_grad=True)  # keep away from the kink
        assert check_gradient(lambda t: F.relu(t).sum(), [x])

    def test_sigmoid(self):
        assert check_gradient(lambda t: F.sigmoid(t).sum(), [self._rand(3, 4)])

    def test_tanh(self):
        assert check_gradient(lambda t: F.tanh(t).sum(), [self._rand(3, 4)])

    def test_softmax(self):
        w = RNG.standard_normal((3, 6))  # weighted sum so the gradient is non-trivial
        x = self._rand(3, 6)
        assert check_gradient(lambda t: (F.softmax(t) * Tensor(w)).sum(), [x])

    def test_log_softmax(self):
        w = RNG.standard_normal((4, 5))
        x = self._rand(4, 5)
        assert check_gradient(lambda t: (F.log_softmax(t) * Tensor(w)).sum(), [x])

    def test_linear_all_inputs(self):
        x, w, b = self._rand(4, 3), self._rand(5, 3), self._rand(5)
        fn = lambda x, w, b: F.linear(x, w, b).sum()
        for wrt in range(3):
            assert check_gradient(fn, [x, w, b], wrt=wrt)

    def test_l2_normalize(self):
        w = RNG.standard_normal((4, 6))
        x = self._rand(4, 6)
        assert check_gradient(lambda t: (F.l2_normalize(t) * Tensor(w)).sum(), [x])

    def test_dropout(self):
        x = self._rand(6, 6)
        fn = lambda t: F.dropout(t, 0.4, training=True, rng=np.random.default_rng(3)).sum()
        assert check_gradient(fn, [x])

    def test_batch_norm_2d(self):
        x = self._rand(4, 3, 2, 2)
        w, b = self._rand(3), self._rand(3)

        def fn(x, w, b):
            # fresh buffers per call: the in-place running-stat update must not
            # leak across the repeated evaluations of the finite difference
            return F.batch_norm_2d(x, w, b, np.zeros(3), np.ones(3), training=True).sum()

        for wrt in range(3):
            assert check_gradient(fn, [x, w, b], wrt=wrt, atol=1e-3)

    def test_global_avg_pool2d(self):
        assert check_gradient(lambda t: F.global_avg_pool2d(t).sum(), [self._rand(2, 3, 4, 4)])

    def test_nll_loss(self):
        targets = np.array([0, 2, 1])
        log_probs = self._rand(3, 4)
        for reduction in ("mean", "sum"):
            assert check_gradient(
                lambda t: F.nll_loss(t, targets, reduction=reduction), [log_probs]
            )

    def test_soft_cross_entropy_both_inputs(self):
        logits = self._rand(3, 5)
        soft = F.softmax(Tensor(RNG.standard_normal((3, 5)), requires_grad=True))
        soft = Tensor(soft.data, requires_grad=True)  # valid distribution as a leaf
        fn = lambda lo, so: F.soft_cross_entropy(lo, so)
        assert check_gradient(fn, [logits, soft], wrt=0)
        assert check_gradient(fn, [logits, soft], wrt=1)

    def test_knowledge_distillation_loss_wrt_student(self):
        student, teacher = self._rand(3, 5), self._rand(3, 5)
        assert check_gradient(
            lambda s, t: F.knowledge_distillation_loss(s, t, temperature=2.0),
            [student, teacher],
            wrt=0,
        )

    def test_kd_loss_teacher_is_detached(self):
        student, teacher = self._rand(3, 5), self._rand(3, 5)
        F.knowledge_distillation_loss(student, teacher).backward()
        assert student.grad is not None
        assert teacher.grad is None

    def test_mse_loss(self):
        pred, target = self._rand(4, 3), self._rand(4, 3)
        for reduction in ("mean", "sum"):
            fn = lambda p, t: F.mse_loss(p, t, reduction=reduction)
            assert check_gradient(fn, [pred, target], wrt=0)
            assert check_gradient(fn, [pred, target], wrt=1)

    def test_embedding_wrt_weight(self):
        weight = self._rand(7, 4)
        indices = np.array([1, 3, 3, 0])
        scale = RNG.standard_normal((4, 4))
        assert check_gradient(
            lambda w: (F.embedding(w, indices) * Tensor(scale)).sum(), [weight]
        )
