"""Tests of the round execution engine: executor parity, broadcast handle, dtype path."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from dataclasses import replace

from repro.autograd.tensor import (
    default_dtype,
    get_default_dtype,
    set_default_dtype,
)
from repro.baselines.registry import build_method
from repro.continual import DomainIncrementalScenario
from repro.datasets import SyntheticDomainDataset
from repro.federated import (
    FederatedConfig,
    FederatedDomainIncrementalSimulation,
    ParallelExecutor,
    SerialExecutor,
    build_executor,
)
from repro.federated.client import ClientHandle, LocalTrainingConfig
from repro.federated.increment import ClientGroup
from repro.federated.server import FederatedServer


def _run_simulation(tiny_spec, tiny_backbone_config, config, method_name="refil"):
    scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
    method = build_method(method_name, tiny_backbone_config, num_tasks=scenario.num_tasks)
    return FederatedDomainIncrementalSimulation(scenario, method, config).run()


class TestExecutorParity:
    def test_serial_and_parallel_runs_are_identical(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        serial = _run_simulation(tiny_spec, tiny_backbone_config, tiny_federated_config)
        parallel = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, executor="parallel", num_workers=2),
        )
        np.testing.assert_array_equal(serial.metrics.matrix, parallel.metrics.matrix)
        assert serial.round_losses == parallel.round_losses
        assert serial.round_loss_components == parallel.round_loss_components

    def test_one_and_many_workers_are_identical(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        one = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, executor="parallel", num_workers=1),
        )
        two = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, executor="parallel", num_workers=2),
        )
        np.testing.assert_array_equal(one.metrics.matrix, two.metrics.matrix)
        assert one.round_losses == two.round_losses

    def test_parity_with_stateful_static_prompt_ablation(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        """refil_gpl disables CDAP, so clients train persistent static prompts;
        the parallel executor must round-trip them through export/import."""
        config = replace(tiny_federated_config, rounds_per_task=2)
        serial = _run_simulation(tiny_spec, tiny_backbone_config, config, "refil_gpl")
        parallel = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            replace(config, executor="parallel", num_workers=2),
            "refil_gpl",
        )
        np.testing.assert_array_equal(serial.metrics.matrix, parallel.metrics.matrix)
        assert serial.round_losses == parallel.round_losses

    def test_build_executor_validation(self):
        assert isinstance(build_executor("serial"), SerialExecutor)
        assert isinstance(build_executor("parallel", 2), ParallelExecutor)
        with pytest.raises(ValueError):
            build_executor("threads")
        with pytest.raises(ValueError):
            FederatedConfig(executor="bogus")
        with pytest.raises(ValueError):
            FederatedConfig(dtype="int32")


class TestBroadcastHandle:
    def _server(self, tiny_backbone_config):
        method = build_method("finetune", tiny_backbone_config, num_tasks=1)
        return FederatedServer(method.build_model())

    def test_view_shares_memory_and_refuses_writes(self, tiny_backbone_config):
        server = self._server(tiny_backbone_config)
        handle = server.broadcast_view()
        for key, view in handle.state.items():
            assert np.shares_memory(view, server.global_state[key])
            assert not view.flags.writeable
        with pytest.raises(ValueError):
            next(iter(handle.state.values()))[...] = 0.0

    def test_handle_and_serialization_are_cached_per_round(self, tiny_backbone_config):
        server = self._server(tiny_backbone_config)
        handle = server.broadcast_view()
        assert server.broadcast_view() is handle
        assert handle.serialized() is handle.serialized()
        server.set_broadcast_payload({"x": np.zeros(2)})
        assert server.broadcast_view() is not handle

    def test_legacy_broadcast_still_deep_copies(self, tiny_backbone_config):
        server = self._server(tiny_backbone_config)
        copy = server.broadcast()
        for key, value in copy.items():
            assert not np.shares_memory(value, server.global_state[key])
            value[...] = 0.0  # writable


class _StateMutatingMethod:
    """A contract-violating method that writes to the shared broadcast state.

    Module-level (not a closure) so it pickles by reference like real methods.
    Only implements what ``_run_client_chunk`` touches.
    """

    name = "mutator"

    def __init__(self, backbone_config):
        self.backbone_config = backbone_config

    def build_model(self):
        from repro.models.backbone import PromptedBackbone

        return PromptedBackbone(self.backbone_config)

    def local_update(self, model, global_state, broadcast_payload, client):
        next(iter(global_state.values()))[...] = 0.0  # must raise read-only

    def export_client_state(self, client_id):
        return None


class TestWorkerContract:
    def test_worker_reprotects_broadcast_state_after_pickling(
        self, tiny_spec, tiny_backbone_config
    ):
        """numpy's writeable flag does not survive pickling; the worker must
        re-apply the read-only view so contract violations fail in parallel
        mode exactly as they do in serial mode."""
        from repro.federated.execution import _run_client_chunk
        from repro.nn.serialization import serialize_state

        method = _StateMutatingMethod(tiny_backbone_config)
        state = method.build_model().state_dict()
        client = ClientHandle(
            client_id=0,
            task_id=0,
            group=ClientGroup.NEW,
            dataset=SyntheticDomainDataset(tiny_spec).domain_split(0, "train"),
            rng=np.random.default_rng(0),
            training=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05),
        )
        with pytest.raises(ValueError, match="read-only"):
            _run_client_chunk(
                pickle.dumps(method), serialize_state(state, {}), [(0, client)], "float64"
            )


class TestPrecision:
    def _local_update(self, tiny_spec, tiny_backbone_config):
        method = build_method("refil", tiny_backbone_config, num_tasks=2)
        model = method.build_model()
        server = FederatedServer(model)
        dataset = SyntheticDomainDataset(tiny_spec).domain_split(0, "train")
        client = ClientHandle(
            client_id=0,
            task_id=0,
            group=ClientGroup.NEW,
            dataset=dataset,
            rng=np.random.default_rng(3),
            training=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05),
        )
        return method.local_update(model, server.broadcast(), server.broadcast_payload, client)

    def test_float32_local_update_matches_float64_within_tolerance(
        self, tiny_spec, tiny_backbone_config
    ):
        with default_dtype(np.float64):
            reference = self._local_update(tiny_spec, tiny_backbone_config)
        with default_dtype(np.float32):
            low_precision = self._local_update(tiny_spec, tiny_backbone_config)
        assert low_precision.train_loss == pytest.approx(reference.train_loss, rel=1e-3, abs=1e-4)
        for key, value in reference.state_dict.items():
            assert low_precision.state_dict[key].dtype == np.float32
            np.testing.assert_allclose(
                low_precision.state_dict[key], value, rtol=1e-2, atol=1e-3
            )

    def test_dataset_astype_honors_requested_dtype_off_default(self):
        from repro.datasets.base import ArrayDataset

        with default_dtype(np.float32):
            dataset = ArrayDataset(np.zeros((2, 3, 4, 4)), np.zeros(2, dtype=np.int64))
            assert dataset.images.dtype == np.float32
            widened = dataset.astype(np.float64)
        assert widened.images.dtype == np.float64
        assert dataset.astype(np.float32) is dataset

    def test_default_dtype_context_restores(self):
        assert get_default_dtype() == np.float64
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)

    def test_float32_simulation_end_to_end(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        result = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, dtype="float32"),
        )
        assert np.isfinite(result.metrics.matrix[~np.isnan(result.metrics.matrix)]).all()
        assert all(np.isfinite(loss) for loss in result.round_losses)
        # the context manager must not leak the dtype into the process default
        assert get_default_dtype() == np.float64


class TestLossBreakdown:
    def test_refil_update_reports_loss_components(self, tiny_spec, tiny_backbone_config):
        method = build_method("refil", tiny_backbone_config, num_tasks=2)
        model = method.build_model()
        server = FederatedServer(model)
        dataset = SyntheticDomainDataset(tiny_spec).domain_split(0, "train")
        client = ClientHandle(
            client_id=0,
            task_id=0,
            group=ClientGroup.NEW,
            dataset=dataset,
            rng=np.random.default_rng(3),
            training=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05),
        )
        update = method.local_update(model, server.broadcast(), server.broadcast_payload, client)
        metrics = update.metrics
        assert set(metrics) == {"loss_ce", "loss_gpl", "loss_dpcl", "loss_total"}
        assert metrics["loss_total"] == pytest.approx(update.train_loss)
        assert metrics["loss_total"] == pytest.approx(
            metrics["loss_ce"] + metrics["loss_gpl"] + metrics["loss_dpcl"], rel=1e-9
        )

    def test_simulation_records_round_loss_components(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        result = _run_simulation(tiny_spec, tiny_backbone_config, tiny_federated_config)
        assert len(result.round_loss_components) == len(result.round_losses)
        for components, mean_loss in zip(result.round_loss_components, result.round_losses):
            assert components["loss_total"] == pytest.approx(mean_loss)
