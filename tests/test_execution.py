"""Tests of the round execution engine: executor parity, broadcast handle, dtype path."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from dataclasses import replace

from repro.autograd.tensor import (
    default_dtype,
    get_default_dtype,
    set_default_dtype,
)
from repro.baselines.registry import build_method
from repro.continual import DomainIncrementalScenario
from repro.datasets import SyntheticDomainDataset
from repro.federated import (
    FederatedConfig,
    FederatedDomainIncrementalSimulation,
    ParallelExecutor,
    SerialExecutor,
    build_executor,
)
from repro.federated.client import ClientHandle, LocalTrainingConfig
from repro.federated.increment import ClientGroup
from repro.federated.server import FederatedServer


def _run_simulation(tiny_spec, tiny_backbone_config, config, method_name="refil"):
    scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
    method = build_method(method_name, tiny_backbone_config, num_tasks=scenario.num_tasks)
    return FederatedDomainIncrementalSimulation(scenario, method, config).run()


class TestExecutorParity:
    def test_serial_and_parallel_runs_are_identical(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        serial = _run_simulation(tiny_spec, tiny_backbone_config, tiny_federated_config)
        parallel = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, executor="parallel", num_workers=2),
        )
        np.testing.assert_array_equal(serial.metrics.matrix, parallel.metrics.matrix)
        assert serial.round_losses == parallel.round_losses
        assert serial.round_loss_components == parallel.round_loss_components

    def test_one_and_many_workers_are_identical(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        one = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, executor="parallel", num_workers=1),
        )
        two = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, executor="parallel", num_workers=2),
        )
        np.testing.assert_array_equal(one.metrics.matrix, two.metrics.matrix)
        assert one.round_losses == two.round_losses

    def test_parity_with_stateful_static_prompt_ablation(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        """refil_gpl disables CDAP, so clients train persistent static prompts;
        the parallel executor must round-trip them through export/import."""
        config = replace(tiny_federated_config, rounds_per_task=2)
        serial = _run_simulation(tiny_spec, tiny_backbone_config, config, "refil_gpl")
        parallel = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            replace(config, executor="parallel", num_workers=2),
            "refil_gpl",
        )
        np.testing.assert_array_equal(serial.metrics.matrix, parallel.metrics.matrix)
        assert serial.round_losses == parallel.round_losses

    def test_build_executor_validation(self):
        assert isinstance(build_executor("serial"), SerialExecutor)
        assert isinstance(build_executor("parallel", 2), ParallelExecutor)
        with pytest.raises(ValueError):
            build_executor("threads")
        with pytest.raises(ValueError):
            FederatedConfig(executor="bogus")
        with pytest.raises(ValueError):
            FederatedConfig(dtype="int32")


class TestBroadcastHandle:
    def _server(self, tiny_backbone_config):
        method = build_method("finetune", tiny_backbone_config, num_tasks=1)
        return FederatedServer(method.build_model())

    def test_view_shares_memory_and_refuses_writes(self, tiny_backbone_config):
        server = self._server(tiny_backbone_config)
        handle = server.broadcast_view()
        for key, view in handle.state.items():
            assert np.shares_memory(view, server.global_state[key])
            assert not view.flags.writeable
        with pytest.raises(ValueError):
            next(iter(handle.state.values()))[...] = 0.0

    def test_handle_and_serialization_are_cached_per_round(self, tiny_backbone_config):
        server = self._server(tiny_backbone_config)
        handle = server.broadcast_view()
        assert server.broadcast_view() is handle
        assert handle.serialized() is handle.serialized()
        server.set_broadcast_payload({"x": np.zeros(2)})
        assert server.broadcast_view() is not handle

    def test_legacy_broadcast_still_deep_copies(self, tiny_backbone_config):
        server = self._server(tiny_backbone_config)
        copy = server.broadcast()
        for key, value in copy.items():
            assert not np.shares_memory(value, server.global_state[key])
            value[...] = 0.0  # writable


class TestReplicaCache:
    def test_replica_key_distinguishes_compute_dtype(self, tiny_backbone_config):
        """Regression: a long-lived worker pool must not reuse a float64
        replica (stale-precision buffers) after set_default_dtype("float32")
        — the compute dtype is part of the cache key."""
        from repro.federated.execution import _replica_key

        method = build_method("finetune", tiny_backbone_config, num_tasks=1)
        state = method.build_model().state_dict()
        with default_dtype("float64"):
            key64 = _replica_key(method, state)
        with default_dtype("float32"):
            key32 = _replica_key(method, state)
        assert key64 != key32
        assert "float64" in key64 and "float32" in key32

    def test_replica_for_builds_one_replica_per_dtype(self, tiny_backbone_config):
        from repro.federated.execution import _WORKER_REPLICAS, _replica_for

        method = build_method("finetune", tiny_backbone_config, num_tasks=1)
        state = method.build_model().state_dict()
        before = dict(_WORKER_REPLICAS)
        try:
            _WORKER_REPLICAS.clear()
            with default_dtype("float64"):
                wide = _replica_for(method, state)
                assert _replica_for(method, state) is wide  # cached
            with default_dtype("float32"):
                narrow = _replica_for(method, state)
            assert narrow is not wide
            assert len(_WORKER_REPLICAS) == 2
        finally:
            _WORKER_REPLICAS.clear()
            _WORKER_REPLICAS.update(before)


class TestShardCache:
    def _handles(self, datasets, task_id, round_index=0):
        return [
            ClientHandle(
                client_id=client_id,
                task_id=task_id,
                group=ClientGroup.NEW,
                dataset=dataset,
                rng=np.random.default_rng(100 * task_id + 10 * round_index + client_id),
                training=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05),
            )
            for client_id, dataset in enumerate(datasets)
        ]

    def test_worker_cache_install_resolve_evict(self, tiny_spec):
        """Unit test of the worker-side cache primitives (run in-process)."""
        from repro.federated.execution import (
            _WORKER_SHARDS,
            _evict_stale_shards,
            _install_shards,
            _resolve_chunk,
        )

        dataset = SyntheticDomainDataset(tiny_spec).domain_split(0, "train")
        [handle] = self._handles([dataset], task_id=0)
        ref = handle.shard_ref()
        before = dict(_WORKER_SHARDS)
        try:
            _WORKER_SHARDS.clear()
            _install_shards({ref.cache_key: pickle.dumps(dataset)})
            [(index, resolved)] = _resolve_chunk([(4, handle.lighten(), ref)])
            assert index == 4
            assert np.array_equal(resolved.dataset.labels, dataset.labels)
            _evict_stale_shards(task_id=0)  # same task: entry survives
            assert ref.cache_key in _WORKER_SHARDS
            _evict_stale_shards(task_id=1)  # task boundary: entry dropped
            assert not _WORKER_SHARDS
            with pytest.raises(RuntimeError, match="cache miss"):
                _resolve_chunk([(0, handle.lighten(), ref)])
        finally:
            _WORKER_SHARDS.clear()
            _WORKER_SHARDS.update(before)

    def test_shard_ships_once_per_task_and_invalidates_on_new_fingerprint(
        self, tiny_spec, tiny_backbone_config
    ):
        """Driving the executor directly with stable client ids: round 2 of a
        task ships zero shard bytes (pure cache hits) and a task boundary —
        new task id, concatenated data, new fingerprint — re-ships."""
        method = build_method("finetune", tiny_backbone_config, num_tasks=2)
        server = FederatedServer(method.build_model())
        source = SyntheticDomainDataset(tiny_spec)
        task0 = [source.domain_split(0, "train").subset(np.arange(s, s + 8)) for s in (0, 8)]
        task1 = [source.domain_split(1, "train").subset(np.arange(s, s + 8)) for s in (0, 8)]
        with ParallelExecutor(num_workers=2) as executor:
            model = method.build_model()
            for round_index in range(2):
                executor.run_round(
                    method, model, server.broadcast_view(),
                    self._handles(task0, task_id=0, round_index=round_index),
                )
            for round_index in range(2):
                executor.run_round(
                    method, model, server.broadcast_view(),
                    self._handles(task1, task_id=1, round_index=round_index),
                )
            first, hit, boundary, hit_again = executor.ipc_log
        assert first.shard_bytes > 0 and first.shards_shipped == 2
        assert hit.shard_bytes == 0 and hit.cache_hits == 2
        assert boundary.shard_bytes > 0 and boundary.shards_shipped == 2
        assert hit_again.shard_bytes == 0 and hit_again.cache_hits == 2

    def test_mixed_task_round_is_rejected(self, tiny_spec, tiny_backbone_config):
        """Task-boundary eviction keys on the round's single task id, so a
        round mixing tasks must fail loudly at entry, not corrupt the cache."""
        method = build_method("finetune", tiny_backbone_config, num_tasks=2)
        server = FederatedServer(method.build_model())
        dataset = SyntheticDomainDataset(tiny_spec).domain_split(0, "train")
        [h0] = self._handles([dataset], task_id=0)
        [h1] = self._handles([dataset], task_id=1)
        h1.client_id = 1
        with ParallelExecutor(num_workers=2) as executor:
            with pytest.raises(ValueError, match="share one task_id"):
                executor.run_round(method, method.build_model(), server.broadcast_view(), [h0, h1])

    def test_cache_disabled_ships_every_round(self, tiny_spec, tiny_backbone_config):
        method = build_method("finetune", tiny_backbone_config, num_tasks=1)
        server = FederatedServer(method.build_model())
        datasets = [
            SyntheticDomainDataset(tiny_spec).domain_split(0, "train").subset(np.arange(s, s + 8))
            for s in (0, 8)
        ]
        with ParallelExecutor(num_workers=2, shard_cache=False) as executor:
            model = method.build_model()
            for round_index in range(2):
                executor.run_round(
                    method, model, server.broadcast_view(),
                    self._handles(datasets, task_id=0, round_index=round_index),
                )
        assert all(ipc.shard_bytes > 0 and ipc.cache_hits == 0 for ipc in executor.ipc_log)

    def test_multi_task_simulation_parity_with_cache_hits(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        """Serial vs parallel over 2 tasks x 2 rounds: the cached run must be
        bit-for-bit identical while actually exercising hits (rounds after
        the first of a task) and invalidations (in-between clients concat)."""
        config = replace(tiny_federated_config, rounds_per_task=2)
        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
        method = build_method("refil", tiny_backbone_config, num_tasks=scenario.num_tasks)
        serial = FederatedDomainIncrementalSimulation(scenario, method, config).run()

        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
        method = build_method("refil", tiny_backbone_config, num_tasks=scenario.num_tasks)
        sim = FederatedDomainIncrementalSimulation(
            scenario, method, replace(config, executor="parallel", num_workers=2)
        )
        parallel = sim.run()
        np.testing.assert_array_equal(serial.metrics.matrix, parallel.metrics.matrix)
        assert serial.round_losses == parallel.round_losses
        log = sim.executor.ipc_log
        assert len(log) == 4  # 2 tasks x 2 rounds
        assert sum(ipc.cache_hits for ipc in log) > 0
        assert log[2].task_id == 1 and log[2].shards_shipped > 0  # invalidated at boundary

    def test_shard_cache_config_knob(self, tiny_spec, tiny_backbone_config, tiny_federated_config):
        config = replace(
            tiny_federated_config, executor="parallel", num_workers=2, shard_cache=False
        )
        assert isinstance(build_executor(config.executor, config.num_workers, config.shard_cache), ParallelExecutor)
        off = _run_simulation(tiny_spec, tiny_backbone_config, config)
        on = _run_simulation(tiny_spec, tiny_backbone_config, replace(config, shard_cache=True))
        np.testing.assert_array_equal(off.metrics.matrix, on.metrics.matrix)
        assert off.round_losses == on.round_losses


class _StateMutatingMethod:
    """A contract-violating method that writes to the shared broadcast state.

    Module-level (not a closure) so it pickles by reference like real methods.
    Only implements what ``_run_client_chunk`` touches.
    """

    name = "mutator"

    def __init__(self, backbone_config):
        self.backbone_config = backbone_config

    def build_model(self):
        from repro.models.backbone import PromptedBackbone

        return PromptedBackbone(self.backbone_config)

    def local_update(self, model, global_state, broadcast_payload, client):
        next(iter(global_state.values()))[...] = 0.0  # must raise read-only

    def export_client_state(self, client_id):
        return None


class TestWorkerContract:
    def test_worker_reprotects_broadcast_state_after_pickling(
        self, tiny_spec, tiny_backbone_config
    ):
        """numpy's writeable flag does not survive pickling; the worker must
        re-apply the read-only view so contract violations fail in parallel
        mode exactly as they do in serial mode."""
        from repro.federated.execution import _run_client_chunk
        from repro.nn.serialization import serialize_state

        method = _StateMutatingMethod(tiny_backbone_config)
        state = method.build_model().state_dict()
        client = ClientHandle(
            client_id=0,
            task_id=0,
            group=ClientGroup.NEW,
            dataset=SyntheticDomainDataset(tiny_spec).domain_split(0, "train"),
            rng=np.random.default_rng(0),
            training=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05),
        )
        with pytest.raises(ValueError, match="read-only"):
            _run_client_chunk(
                pickle.dumps(method), serialize_state(state, {}), [(0, client)], "float64"
            )


class TestPrecision:
    def _local_update(self, tiny_spec, tiny_backbone_config):
        method = build_method("refil", tiny_backbone_config, num_tasks=2)
        model = method.build_model()
        server = FederatedServer(model)
        dataset = SyntheticDomainDataset(tiny_spec).domain_split(0, "train")
        client = ClientHandle(
            client_id=0,
            task_id=0,
            group=ClientGroup.NEW,
            dataset=dataset,
            rng=np.random.default_rng(3),
            training=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05),
        )
        return method.local_update(model, server.broadcast(), server.broadcast_payload, client)

    def test_float32_local_update_matches_float64_within_tolerance(
        self, tiny_spec, tiny_backbone_config
    ):
        with default_dtype(np.float64):
            reference = self._local_update(tiny_spec, tiny_backbone_config)
        with default_dtype(np.float32):
            low_precision = self._local_update(tiny_spec, tiny_backbone_config)
        assert low_precision.train_loss == pytest.approx(reference.train_loss, rel=1e-3, abs=1e-4)
        for key, value in reference.state_dict.items():
            assert low_precision.state_dict[key].dtype == np.float32
            np.testing.assert_allclose(
                low_precision.state_dict[key], value, rtol=1e-2, atol=1e-3
            )

    def test_dataset_astype_honors_requested_dtype_off_default(self):
        from repro.datasets.base import ArrayDataset

        with default_dtype(np.float32):
            dataset = ArrayDataset(np.zeros((2, 3, 4, 4)), np.zeros(2, dtype=np.int64))
            assert dataset.images.dtype == np.float32
            widened = dataset.astype(np.float64)
        assert widened.images.dtype == np.float64
        assert dataset.astype(np.float32) is dataset

    def test_default_dtype_context_restores(self):
        assert get_default_dtype() == np.float64
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)

    def test_float32_simulation_end_to_end(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        result = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            replace(tiny_federated_config, dtype="float32"),
        )
        assert np.isfinite(result.metrics.matrix[~np.isnan(result.metrics.matrix)]).all()
        assert all(np.isfinite(loss) for loss in result.round_losses)
        # the context manager must not leak the dtype into the process default
        assert get_default_dtype() == np.float64


class TestLossBreakdown:
    def test_refil_update_reports_loss_components(self, tiny_spec, tiny_backbone_config):
        method = build_method("refil", tiny_backbone_config, num_tasks=2)
        model = method.build_model()
        server = FederatedServer(model)
        dataset = SyntheticDomainDataset(tiny_spec).domain_split(0, "train")
        client = ClientHandle(
            client_id=0,
            task_id=0,
            group=ClientGroup.NEW,
            dataset=dataset,
            rng=np.random.default_rng(3),
            training=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05),
        )
        update = method.local_update(model, server.broadcast(), server.broadcast_payload, client)
        metrics = update.metrics
        assert set(metrics) == {"loss_ce", "loss_gpl", "loss_dpcl", "loss_total"}
        assert metrics["loss_total"] == pytest.approx(update.train_loss)
        assert metrics["loss_total"] == pytest.approx(
            metrics["loss_ce"] + metrics["loss_gpl"] + metrics["loss_dpcl"], rel=1e-9
        )

    def test_simulation_records_round_loss_components(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        result = _run_simulation(tiny_spec, tiny_backbone_config, tiny_federated_config)
        assert len(result.round_loss_components) == len(result.round_losses)
        for components, mean_loss in zip(result.round_loss_components, result.round_losses):
            assert components["loss_total"] == pytest.approx(mean_loss)
