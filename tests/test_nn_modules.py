"""Tests for the Module system and the individual layers."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd import Tensor
from repro.nn.module import Module, Parameter

RNG = np.random.default_rng(9)


class _ToyNet(Module):
    def __init__(self):
        super().__init__()
        self.first = nn.Linear(4, 8, rng=RNG)
        self.second = nn.Linear(8, 2, rng=RNG)
        self.register_buffer("counter", np.zeros(1))

    def forward(self, x):
        return self.second(self.first(x).relu())


class TestModuleSystem:
    def test_parameters_are_registered_recursively(self):
        net = _ToyNet()
        names = [name for name, _ in net.named_parameters()]
        assert "first.weight" in names and "second.bias" in names
        assert len(net.parameters()) == 4

    def test_buffers_registered(self):
        net = _ToyNet()
        assert dict(net.named_buffers())["counter"].shape == (1,)

    def test_state_dict_roundtrip(self):
        net = _ToyNet()
        state = net.state_dict()
        other = _ToyNet()
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(net.named_parameters(), other.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_state_dict_is_a_copy(self):
        net = _ToyNet()
        state = net.state_dict()
        state["first.weight"][...] = 0.0
        assert not np.allclose(net.first.weight.data, 0.0)

    def test_load_state_dict_shape_mismatch_raises(self):
        net = _ToyNet()
        state = net.state_dict()
        state["first.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_load_state_dict_missing_key_strict(self):
        net = _ToyNet()
        with pytest.raises(KeyError):
            net.load_state_dict({}, strict=True)
        net.load_state_dict({}, strict=False)

    def test_train_eval_propagates(self):
        net = _ToyNet()
        net.eval()
        assert not net.first.training
        net.train()
        assert net.second.training

    def test_freeze_unfreeze(self):
        net = _ToyNet()
        net.freeze()
        assert all(not p.requires_grad for p in net.parameters())
        net.unfreeze()
        assert all(p.requires_grad for p in net.parameters())

    def test_zero_grad_clears(self):
        net = _ToyNet()
        out = net(Tensor(RNG.standard_normal((3, 4))))
        out.sum().backward()
        assert net.first.weight.grad is not None
        net.zero_grad()
        assert net.first.weight.grad is None

    def test_num_parameters(self):
        net = _ToyNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_sequential_runs_in_order(self):
        seq = nn.Sequential(nn.Linear(3, 5, rng=RNG), nn.ReLU(), nn.Linear(5, 2, rng=RNG))
        assert len(seq) == 3
        assert seq(Tensor(RNG.standard_normal((4, 3)))).shape == (4, 2)
        assert isinstance(seq[1], nn.ReLU)

    def test_module_list_registration(self):
        layers = nn.ModuleList([nn.Linear(2, 2, rng=RNG) for _ in range(3)])
        assert len(layers) == 3
        assert len([name for name, _ in layers.named_parameters()]) == 6
        with pytest.raises(NotImplementedError):
            layers(Tensor(np.zeros((1, 2))))


class TestLayers:
    def test_linear_shapes_and_grad(self):
        layer = nn.Linear(6, 3, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((5, 6)), requires_grad=True))
        assert out.shape == (5, 3)
        out.sum().backward()
        assert layer.weight.grad.shape == (3, 6)

    def test_linear_no_bias(self):
        layer = nn.Linear(4, 2, bias=False, rng=RNG)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_conv2d_layer(self):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_batchnorm_updates_running_stats_only_in_training(self):
        bn = nn.BatchNorm2d(4)
        x = Tensor(RNG.standard_normal((8, 4, 3, 3)) + 3.0)
        bn(x)
        after_train = bn.running_mean.copy()
        assert not np.allclose(after_train, 0.0)
        bn.eval()
        bn(x)
        assert np.allclose(bn.running_mean, after_train)

    def test_layernorm_learnable_params(self):
        ln = nn.LayerNorm(16)
        assert len(ln.parameters()) == 2
        out = ln(Tensor(RNG.standard_normal((2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_activations_shapes(self):
        x = Tensor(RNG.standard_normal((3, 4)))
        for layer in (nn.ReLU(), nn.GELU(), nn.Tanh(), nn.Sigmoid(), nn.Identity()):
            assert layer(x).shape == (3, 4)

    def test_pooling_layers(self):
        x = Tensor(RNG.standard_normal((2, 3, 8, 8)))
        assert nn.MaxPool2d(2)(x).shape == (2, 3, 4, 4)
        assert nn.AvgPool2d(4)(x).shape == (2, 3, 2, 2)
        assert nn.GlobalAvgPool2d()(x).shape == (2, 3)

    def test_dropout_validation_and_modes(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)
        drop = nn.Dropout(0.5, rng=RNG)
        x = Tensor(np.ones((50, 50)))
        assert (drop(x).data == 0).any()
        drop.eval()
        assert np.allclose(drop(x).data, 1.0)

    def test_embedding_lookup_and_bounds(self):
        emb = nn.Embedding(10, 6, rng=RNG)
        out = emb(np.array([0, 3, 9]))
        assert out.shape == (3, 6)
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_mlp_hidden_stack(self):
        mlp = nn.MLP(8, [16, 16], 4, activation="relu", rng=RNG)
        assert mlp(Tensor(RNG.standard_normal((3, 8)))).shape == (3, 4)
        with pytest.raises(ValueError):
            nn.MLP(8, [16], 4, activation="swish")

    def test_mlp_works_on_token_sequences(self):
        mlp = nn.MLP(8, [16], 8, rng=RNG)
        assert mlp(Tensor(RNG.standard_normal((2, 5, 8)))).shape == (2, 5, 8)


class TestAttention:
    def test_mhsa_shape_preserved(self):
        attn = nn.MultiHeadSelfAttention(16, num_heads=4, rng=RNG)
        x = Tensor(RNG.standard_normal((3, 7, 16)))
        assert attn(x).shape == (3, 7, 16)

    def test_mhsa_head_divisibility(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, num_heads=3)

    def test_transformer_block_gradients_flow(self):
        block = nn.TransformerBlock(16, num_heads=2, rng=RNG)
        x = Tensor(RNG.standard_normal((2, 6, 16)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in block.parameters())

    def test_attention_depends_on_other_tokens(self):
        block = nn.MultiHeadSelfAttention(8, num_heads=2, rng=RNG)
        base = RNG.standard_normal((1, 4, 8))
        changed = base.copy()
        changed[0, 3] += 10.0
        out_base = block(Tensor(base)).data
        out_changed = block(Tensor(changed)).data
        # Changing token 3 must change the output at token 0 (attention mixes tokens).
        assert not np.allclose(out_base[0, 0], out_changed[0, 0])


class TestSerialization:
    def test_save_and_load_roundtrip(self, tmp_path):
        net = _ToyNet()
        path = nn.save_state_dict(net.state_dict(), tmp_path / "model.npz")
        loaded = nn.load_state_dict(path)
        assert nn.state_dicts_allclose(net.state_dict(), loaded)

    def test_state_dicts_allclose_detects_difference(self):
        net = _ToyNet()
        a = net.state_dict()
        b = net.state_dict()
        b["first.weight"] = b["first.weight"] + 1.0
        assert not nn.state_dicts_allclose(a, b)
        del b["first.weight"]
        assert not nn.state_dicts_allclose(a, b)
