#!/usr/bin/env python3
"""Inspect RefFiL's prompt machinery outside of a full federated run.

This example exercises the lower-level public API directly:

1. build the composite RefFiL model (backbone + CDAP generator),
2. generate instance-level prompts for batches from two different synthetic
   domains and show that the generator separates them,
3. average them into per-class Local Prompt Groups (what a client uploads),
4. cluster the groups on the "server" with FINCH and show the clusters align
   with domains,
5. compute the decayed DPCL temperature schedule over the task stream.

Run with:

    python examples/prompt_clustering_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.core.clustering import cluster_prompt_groups
from repro.core.dpcl import DPCLConfig, decayed_temperature
from repro.core.model import RefFiLModel
from repro.core.prompts import GlobalPromptStore, LocalPromptCollector
from repro.datasets.base import DataLoader
from repro.datasets.registry import get_dataset_spec
from repro.datasets.synthetic import generate_domain_split
from repro.models.backbone import BackboneConfig


def collect_prompt_groups(model: RefFiLModel, spec, domain_index: int, task_id: int):
    """Run the CDAP generator over one domain and average prompts per class."""
    collector = LocalPromptCollector(model.embed_dim)
    data = generate_domain_split(spec, domain_index, "train")
    with no_grad():
        for images, labels in DataLoader(data, batch_size=16, shuffle=False):
            prompts = model.generate_prompts(images, task_id=task_id)
            collector.add_batch(prompts, labels)
    return collector.local_prompt_group()


def main() -> None:
    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=64, test_per_domain=32, num_classes=4
    )
    model = RefFiLModel(
        BackboneConfig(image_size=spec.image_size, num_classes=spec.num_classes,
                       base_width=8, embed_dim=32, seed=0),
        prompt_length=4,
        max_tasks=spec.num_domains,
    )

    print("collecting Local Prompt Groups from two domains ...")
    group_domain0 = collect_prompt_groups(model, spec, domain_index=0, task_id=0)
    group_domain1 = collect_prompt_groups(model, spec, domain_index=1, task_id=1)

    for label in sorted(group_domain0):
        a, b = group_domain0[label], group_domain1[label]
        cosine = float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))
        print(f"  class {label}: cosine(domain0 LPG, domain1 LPG) = {cosine:+.3f}")

    print("\nclustering the uploaded prompt groups on the server (FINCH) ...")
    clustered = cluster_prompt_groups([group_domain0, group_domain1])
    store = GlobalPromptStore(num_classes=spec.num_classes, embed_dim=model.embed_dim)
    store.replace(clustered)
    for label in sorted(clustered):
        print(f"  class {label}: {clustered[label].shape[0]} representative prompt(s)")
    print(f"  broadcast payload size: {store.payload_bytes()} bytes")

    print("\nDPCL temperature decay over the task stream (paper Eq. 10):")
    config = DPCLConfig()
    for task in range(1, spec.num_domains + 1):
        print(f"  task {task}: tau' = {decayed_temperature(config, task):.3f}")


if __name__ == "__main__":
    main()
