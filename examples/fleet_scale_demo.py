#!/usr/bin/env python3
"""Train over a 100,000-virtual-client fleet with tree aggregation.

The paper's setup federates tens of clients; real cross-device fleets have
orders of magnitude more, of which only a small cohort participates per
round.  This example turns the population into lazy virtual-client recipes
(``virtual_clients=True, population=100_000``) — no shard, profile or any
other per-client state exists until a client is actually selected — and
aggregates each round through a fan-out tree of edge aggregators whose
partial reduces ride measured wire frames (``reduce_backend="tree"``).

Memory stays O(clients_per_round) regardless of population: scale the
population to a million and the round cost does not move.

Run with:

    python examples/fleet_scale_demo.py
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, scaled_config
from repro.experiments.runner import run_method_on_dataset

POPULATION = 100_000


def main() -> None:
    config = scaled_config(
        "office_caltech",
        scale=ExperimentScale.TINY,
        seed=0,
        num_tasks=2,
        virtual_clients=True,
        population=POPULATION,
        reduce_backend="tree",
        tree_fanout=2,
    )
    print("configuration:", config.describe())
    print(f"population: {POPULATION} virtual clients, "
          f"{config.federated.clients_per_round} selected per round, "
          f"tree fanout {config.federated.tree_fanout}")

    result = run_method_on_dataset("finetune", config)
    metrics = result.metrics
    ledger = result.simulation.communication

    print(f"\nfinal accuracy: avg {metrics.average:.4f}, last {metrics.last:.4f}")
    print(f"aggregation rounds: {len(result.simulation.round_losses)}")
    print(f"wire traffic: {ledger.uploaded_bytes} upload bytes, "
          f"{ledger.broadcast_bytes} broadcast bytes, "
          f"{ledger.edge_bytes} edge-aggregator bytes "
          f"({ledger.edge_frames} edge frames)")
    cohorts = sorted(
        {
            client_id
            for entry in result.simulation.event_log
            for client_id in entry.get("clients", ())
        }
    )
    print(f"clients that ever trained: {len(cohorts)} of {POPULATION} "
          f"(ids span {cohorts[0]}..{cohorts[-1]})")


if __name__ == "__main__":
    main()
