#!/usr/bin/env python3
"""Fault-tolerance demo: inject failures, checkpoint, kill the run, resume it.

Three acts, all on the same tiny synthetic workload:

1. Run a clean reference and the same seed under a deterministic fault
   schedule (client crashes, lost and corrupted uploads, a periodic server
   restart) and compare their accuracy and fault counters.
2. Run with checkpointing enabled, then start a *fresh* process-equivalent
   simulation that resumes from the earliest snapshot and verify it lands on
   the reference run's final state hash bit-for-bit.
3. Simulate an operator workflow: the same ``resume=True`` configuration is
   safe to launch unconditionally — with no checkpoint present it starts from
   scratch, after a crash it picks up at the last snapshot.

Run with:

    python examples/fault_tolerance_demo.py
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.baselines import build_method
from repro.continual.scenario import DomainIncrementalScenario
from repro.datasets.registry import build_dataset, get_dataset_spec
from repro.federated import FaultSpec, parse_checkpoint_name, simulation_state_hash
from repro.federated.client import LocalTrainingConfig
from repro.federated.config import FederatedConfig
from repro.federated.increment import ClientIncrementConfig
from repro.federated.simulation import FederatedDomainIncrementalSimulation


def build_simulation(**overrides) -> FederatedDomainIncrementalSimulation:
    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=48, test_per_domain=24, num_classes=3
    )
    dataset = build_dataset("office_caltech", spec_override=spec)
    scenario = DomainIncrementalScenario(dataset, num_tasks=2)
    from repro.models.backbone import BackboneConfig

    backbone = BackboneConfig(
        image_size=spec.image_size, num_classes=spec.num_classes,
        base_width=8, embed_dim=32, seed=0,
    )
    method = build_method("finetune", backbone, num_tasks=scenario.num_tasks)
    config = FederatedConfig(
        increment=ClientIncrementConfig(
            initial_clients=4, increment_per_task=1, transfer_fraction=0.8, seed=0
        ),
        clients_per_round=3,
        rounds_per_task=2,
        local=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.08),
        seed=0,
        **overrides,
    )
    return FederatedDomainIncrementalSimulation(scenario, method, config)


def main() -> None:
    # --- Act 1: the same seed, with and without injected faults. ------------
    clean_sim = build_simulation()
    clean = clean_sim.run()
    print("clean run     : "
          f"avg {clean.metrics.average:.4f}, last {clean.metrics.last:.4f}, "
          f"{len(clean.round_losses)} aggregations")

    chaos = FaultSpec(
        client_crash_rate=0.2,
        upload_loss_rate=0.2,
        upload_corruption_rate=0.2,
        server_restart_every=2,
    )
    faulty_sim = build_simulation(faults=chaos, retries=3, retry_backoff=0.5)
    faulty = faulty_sim.run()
    counters = {k: v for k, v in faulty.fault_stats.items() if isinstance(v, int) and v}
    print("faulted run   : "
          f"avg {faulty.metrics.average:.4f}, last {faulty.metrics.last:.4f}, "
          f"{len(faulty.round_losses)} aggregations")
    print(f"fault counters: {counters}")

    # --- Act 2: checkpoint, then resume from the earliest snapshot. ---------
    full_dir = tempfile.mkdtemp(prefix="fault-demo-full-")
    resume_dir = tempfile.mkdtemp(prefix="fault-demo-resume-")
    try:
        checkpointed_sim = build_simulation(checkpoint_every=1, checkpoint_dir=full_dir)
        checkpointed_sim.run()
        reference_hash = simulation_state_hash(checkpointed_sim)
        names = sorted(os.listdir(full_dir), key=parse_checkpoint_name)
        print(f"\ncheckpoints written: {names}")

        # Keep only the earliest snapshot — everything after it re-trains.
        shutil.copy(os.path.join(full_dir, names[0]), os.path.join(resume_dir, names[0]))
        resumed_sim = build_simulation(
            checkpoint_every=1, checkpoint_dir=resume_dir, resume=True
        )
        resumed = resumed_sim.run()
        print(f"resumed from  : {os.path.basename(resumed.fault_stats['resumed_from'])}")
        match = simulation_state_hash(resumed_sim) == reference_hash
        print(f"bit-for-bit   : {'MATCH' if match else 'MISMATCH'}")
        if not match:
            raise SystemExit("resumed run diverged from the uninterrupted run")

        # --- Act 3: resume=True is safe with an empty checkpoint dir. -------
        fresh_dir = tempfile.mkdtemp(prefix="fault-demo-fresh-")
        try:
            fresh_sim = build_simulation(
                checkpoint_every=1, checkpoint_dir=fresh_dir, resume=True
            )
            fresh = fresh_sim.run()
            started_over = fresh.fault_stats.get("resumed_from") is None
            print(f"empty-dir resume starts fresh: {started_over}")
        finally:
            shutil.rmtree(fresh_dir, ignore_errors=True)
    finally:
        shutil.rmtree(full_dir, ignore_errors=True)
        shutil.rmtree(resume_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
