#!/usr/bin/env python3
"""Quickstart: train RefFiL on the synthetic OfficeCaltech10 analogue.

This is the smallest end-to-end use of the public API: build a scaled-down
dataset, run the federated domain-incremental simulation with RefFiL, and
print the paper's four metrics (Avg / Last / FGT / BwT) plus the per-step
accuracies.

Run with:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.trainer import train_refil
from repro.datasets.registry import get_dataset_spec
from repro.federated.client import LocalTrainingConfig
from repro.federated.config import FederatedConfig
from repro.federated.increment import ClientIncrementConfig


def main() -> None:
    # A small spec keeps the run to roughly a minute on a laptop CPU.
    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=96, test_per_domain=40, num_classes=4
    )
    federated = FederatedConfig(
        increment=ClientIncrementConfig(
            initial_clients=6, increment_per_task=1, transfer_fraction=0.8, seed=0
        ),
        clients_per_round=3,
        rounds_per_task=2,
        local=LocalTrainingConfig(local_epochs=2, batch_size=16, learning_rate=0.08),
        seed=0,
    )

    result = train_refil(dataset_name="office_caltech", federated=federated, dataset_spec=spec)

    metrics = result.metrics.as_percentages()
    print(f"\nRefFiL on office_caltech ({len(result.per_task_accuracy)} domain tasks)")
    print(f"  Avg  accuracy : {metrics['avg']:.2f}%")
    print(f"  Last accuracy : {metrics['last']:.2f}%")
    print(f"  Forgetting    : {metrics['fgt']:.3f}")
    print(f"  BwT           : {metrics['bwt']:.3f}")
    print("  per-step averages:", [f"{v:.1f}%" for v in result.metrics.step_averages_pct()])
    print(f"  total communication: {result.communication.total_bytes / 1e6:.1f} MB "
          f"over {result.communication.rounds} rounds")
    print(f"  wall clock: {result.wall_clock_seconds:.1f}s")


if __name__ == "__main__":
    main()
