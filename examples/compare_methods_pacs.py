#!/usr/bin/env python3
"""Compare RefFiL against the rehearsal-free baselines on the PACS analogue.

PACS is the paper's canonical style-shift benchmark (Photo / Cartoon / Sketch /
Art painting).  This example runs a subset of the Table I comparison -- the
Finetune lower bound, the two prompt baselines and RefFiL -- and prints a
Table-I-style summary, demonstrating how to drive the experiment harness
programmatically.

Run with:

    python examples/compare_methods_pacs.py
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, scaled_config
from repro.experiments.reporting import ResultTable
from repro.experiments.runner import run_method_on_dataset
from repro.experiments.tables import METHOD_LABELS

METHODS = ("finetune", "fedl2p", "feddualprompt", "refil")


def main() -> None:
    config = scaled_config("pacs", scale=ExperimentScale.TINY, seed=0)
    print("configuration:", config.describe())

    table = ResultTable(
        title="PACS (synthetic analogue): Avg / Last / FGT / BwT",
        columns=["Avg", "Last", "FGT", "BwT"],
    )
    for method in METHODS:
        result = run_method_on_dataset(method, config)
        pct = result.metrics.as_percentages()
        table.add_row(
            METHOD_LABELS[method],
            {"Avg": pct["avg"], "Last": pct["last"], "FGT": pct["fgt"], "BwT": pct["bwt"]},
        )
        steps = ", ".join(f"{v:.1f}" for v in result.metrics.step_averages_pct())
        print(f"{METHOD_LABELS[method]:>16s}: per-step averages [{steps}]")

    print("\n" + table.to_text())
    print(f"\nbest Avg: {table.best_row('Avg')}   best Last: {table.best_row('Last')}")


if __name__ == "__main__":
    main()
