#!/usr/bin/env python3
"""Serve live predictions from a federated run as it trains.

The serving plane decouples *publishing* from *training*: the simulation
publishes a codec-compressed, CRC-checked model version into a
:class:`~repro.serving.registry.ModelRegistry` at every task boundary (and
every ``publish_every`` rounds), while a concurrent
:class:`~repro.serving.service.ServingFrontEnd` micro-batches client
requests against the newest installed version and hot-swaps to each fresh
publish between batches — in-flight requests always finish on the version
they started with, and none are ever dropped.

This demo trains a two-task run with ``serve=True``, hammers the front end
from a client thread the whole time, then prints the registry manifest, the
versions the client actually observed, and the per-version latency
telemetry.

Run with:

    python examples/serving_demo.py
"""

from __future__ import annotations

import tempfile
import threading
import time

import numpy as np

from repro.baselines import build_method
from repro.continual.scenario import DomainIncrementalScenario
from repro.datasets import build_dataset
from repro.experiments.config import ExperimentScale, scaled_config
from repro.federated.simulation import FederatedDomainIncrementalSimulation
from repro.serving.registry import ModelRegistry


def main() -> None:
    with tempfile.TemporaryDirectory() as registry_dir:
        config = scaled_config(
            "digits_five",
            scale=ExperimentScale.TINY,
            seed=0,
            num_tasks=2,
            serve=True,
            publish_every=1,
            registry_dir=registry_dir,
            serve_codec="delta",
            checkpoint_keep=3,
        )
        print("configuration:", config.describe())
        dataset = build_dataset(config.dataset_name, spec_override=config.spec)
        scenario = DomainIncrementalScenario(dataset, num_tasks=config.num_tasks)
        method = build_method("finetune", backbone=config.backbone, num_tasks=scenario.num_tasks)
        simulation = FederatedDomainIncrementalSimulation(scenario, method, config.federated)

        size = config.spec.image_size
        stop = threading.Event()
        responses = []

        def client() -> None:
            """A live inference client running for the whole training run."""
            rng = np.random.default_rng(42)
            while not stop.is_set():
                if simulation.serving.engine.current_version is None:
                    # Nothing published yet: poll the registry until v1 lands.
                    simulation.serving.engine.refresh()
                    time.sleep(0.005)
                    continue
                sample = rng.uniform(-1.0, 1.0, size=(3, size, size))
                try:
                    responses.append(simulation.serving.predict(sample, timeout=30))
                except RuntimeError:
                    return  # front end drained and stopped with the run

        thread = threading.Thread(target=client)
        thread.start()
        result = simulation.run()  # closes the front end (drain, then stop)
        stop.set()
        thread.join()

        stats = result.serving_stats
        print(f"\npublished {stats['versions_published']} versions, "
              f"retained {stats['versions_retained']} (checkpoint_keep), "
              f"latest v{stats['latest_version']}")
        print("registry manifest:")
        for info in ModelRegistry(registry_dir).list_versions():
            accuracy = (
                ", ".join(f"{k}={v:.3f}" for k, v in info.accuracy.items())
                if info.accuracy
                else "-"
            )
            print(f"  v{info.version}: task {info.task_id} round {info.round_index}, "
                  f"codec {info.codec}, {info.num_bytes} bytes, accuracy {accuracy}")

        versions_seen = sorted({response.version for response in responses})
        telemetry = stats["frontend"]
        print(f"\nclient: {len(responses)} responses across versions {versions_seen} "
              f"({telemetry['swap_count']} hot swaps, {telemetry['rejected']} rejected)")
        for version, entry in telemetry["versions"].items():
            print(f"  v{version}: {entry['requests']} requests, "
                  f"p50 {entry['p50_latency'] * 1e3:.1f} ms, "
                  f"p95 {entry['p95_latency'] * 1e3:.1f} ms")
        assert len(responses) > 0 and telemetry["rejected"] == 0


if __name__ == "__main__":
    main()
