"""Fig. 2: per-component cost of one RefFiL client training step.

Fig. 2 is the framework diagram (feature extractor -> CDAP -> L_CE / L_GPL /
L_DPCL -> upload).  This bench measures the wall-clock cost of one mini-batch
through that pipeline and of a full client local update, which is the quantity
a deployment on resource-constrained devices cares about.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import default_dtype
from repro.core import RefFiLConfig, RefFiLMethod
from repro.datasets.registry import get_dataset_spec
from repro.datasets.synthetic import generate_domain_split
from repro.federated.client import ClientHandle, LocalTrainingConfig
from repro.federated.increment import ClientGroup
from repro.federated.server import FederatedServer
from repro.models.backbone import BackboneConfig
from repro.utils.timing import Timer


def _build_step():
    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=32, test_per_domain=16, num_classes=4
    )
    backbone = BackboneConfig(image_size=spec.image_size, num_classes=spec.num_classes,
                              base_width=8, embed_dim=32, seed=0)
    method = RefFiLMethod(RefFiLConfig(backbone=backbone, max_tasks=4))
    model = method.build_model()
    server = FederatedServer(model)
    data = generate_domain_split(spec, 0, "train")
    client = ClientHandle(
        client_id=0,
        task_id=0,
        group=ClientGroup.NEW,
        dataset=data,
        rng=np.random.default_rng(0),
        training=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.05),
    )
    return method, model, server, client


def test_fig2_pipeline_local_update(benchmark):
    method, model, server, client = _build_step()

    def one_local_update():
        return method.local_update(model, server.broadcast(), server.broadcast_payload, client)

    update = benchmark.pedantic(one_local_update, rounds=3, iterations=1, warmup_rounds=1)
    print(f"\nFig.2 pipeline: one client local update over {client.num_samples} samples")
    print(f"  uploaded state arrays : {len(update.state_dict)}")
    print(f"  uploaded prompt groups: {len(update.payload['prompt_groups'])}")
    print(f"  upload size           : {update.upload_bytes() / 1024:.1f} KiB")
    assert update.num_samples == client.num_samples
    assert update.payload["prompt_groups"]


def test_fig2_pipeline_float32_vs_float64(benchmark, bench_record):
    """The same local update at both compute precisions (the ``dtype`` knob).

    float32 halves the memory bandwidth of every conv / matmul in the
    pipeline, which is the dominant cost on CPU; the measured speedup and the
    loss agreement between precisions are recorded in ``BENCH_round.json``.
    """
    timer = Timer()
    reps = 3
    losses = {}

    def run_at(dtype_name):
        with default_dtype(dtype_name):
            method, model, server, client = _build_step()
            # Warm-up outside the timed region (first call touches cold caches).
            method.local_update(model, server.broadcast(), server.broadcast_payload, client)
            for _ in range(reps):
                with timer.measure(dtype_name):
                    update = method.local_update(
                        model, server.broadcast(), server.broadcast_payload, client
                    )
            losses[dtype_name] = update.train_loss

    benchmark.pedantic(lambda: (run_at("float64"), run_at("float32")),
                       rounds=1, iterations=1, warmup_rounds=0)

    t64 = timer.mean("float64")
    t32 = timer.mean("float32")
    speedup = t64 / t32 if t32 > 0 else float("inf")
    bench_record(
        "fig2_precision",
        {
            "float64_step_s": t64,
            "float32_step_s": t32,
            "speedup": speedup,
            "float64_loss": losses["float64"],
            "float32_loss": losses["float32"],
        },
    )
    print(f"\nFig.2 pipeline precision (mean of {reps} local updates):")
    print(f"  float64 : {t64 * 1000:.1f} ms  (loss {losses['float64']:.4f})")
    print(f"  float32 : {t32 * 1000:.1f} ms  (loss {losses['float32']:.4f})")
    print(f"  speedup : {speedup:.2f}x")
    # Precisions must agree on the training trajectory to well within SGD noise.
    assert abs(losses["float64"] - losses["float32"]) < 1e-2
