"""Fig. 2: per-component cost of one RefFiL client training step.

Fig. 2 is the framework diagram (feature extractor -> CDAP -> L_CE / L_GPL /
L_DPCL -> upload).  This bench measures the wall-clock cost of one mini-batch
through that pipeline and of a full client local update, which is the quantity
a deployment on resource-constrained devices cares about.
"""

from __future__ import annotations

import numpy as np

from repro.core import RefFiLConfig, RefFiLMethod
from repro.datasets.registry import get_dataset_spec
from repro.datasets.synthetic import generate_domain_split
from repro.federated.client import ClientHandle, LocalTrainingConfig
from repro.federated.increment import ClientGroup
from repro.federated.server import FederatedServer
from repro.models.backbone import BackboneConfig


def _build_step():
    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=32, test_per_domain=16, num_classes=4
    )
    backbone = BackboneConfig(image_size=spec.image_size, num_classes=spec.num_classes,
                              base_width=8, embed_dim=32, seed=0)
    method = RefFiLMethod(RefFiLConfig(backbone=backbone, max_tasks=4))
    model = method.build_model()
    server = FederatedServer(model)
    data = generate_domain_split(spec, 0, "train")
    client = ClientHandle(
        client_id=0,
        task_id=0,
        group=ClientGroup.NEW,
        dataset=data,
        rng=np.random.default_rng(0),
        training=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.05),
    )
    return method, model, server, client


def test_fig2_pipeline_local_update(benchmark):
    method, model, server, client = _build_step()

    def one_local_update():
        return method.local_update(model, server.broadcast(), server.broadcast_payload, client)

    update = benchmark.pedantic(one_local_update, rounds=3, iterations=1, warmup_rounds=1)
    print(f"\nFig.2 pipeline: one client local update over {client.num_samples} samples")
    print(f"  uploaded state arrays : {len(update.state_dict)}")
    print(f"  uploaded prompt groups: {len(update.payload['prompt_groups'])}")
    print(f"  upload size           : {update.upload_bytes() / 1024:.1f} KiB")
    assert update.num_samples == client.num_samples
    assert update.payload["prompt_groups"]
