"""Table VIII: sensitivity of RefFiL to the DPCL temperature-decay hyper-parameters."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.tables import TABLE8_CONFIGS, table8_temperature_sensitivity


def test_table8_temperature_sensitivity(benchmark, scale):
    table = run_once(benchmark, lambda: table8_temperature_sensitivity(scale=scale))
    print("\n" + table.to_text())
    assert len(table.rows) == len(TABLE8_CONFIGS)
    # The decayed temperature of the paper's default row is 0.72 (Eq. 10).
    assert table.value("ours", "tau3") == pytest.approx(0.72)
    # The w/o-decay row keeps the base temperature.
    assert table.value("w/o tau'", "tau3") == pytest.approx(0.9)
