"""Table VI: Digits-Five with 10 selected clients and 90% task transfer."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.tables import COMPARED_METHODS, table6_digits_selection


def test_table6_digits_selection(benchmark, scale):
    table = run_once(benchmark, lambda: table6_digits_selection(scale=scale))
    print("\n" + table.to_text())
    assert len(table.rows) == len(COMPARED_METHODS)
    assert table.columns == ["AVG", "Last", "FGT", "BwT"]
    # Shape target: RefFiL should not have the worst forgetting of all methods.
    forgetting = table.column("FGT")
    assert forgetting["RefFiL"] <= max(forgetting.values())
