"""Table II: the Table I comparison repeated under the shuffled ("new") domain order."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.tables import COMPARED_METHODS, TABLE_DATASETS, table2_summary


def test_table2_domain_order(benchmark, scale):
    table = run_once(benchmark, lambda: table2_summary(scale=scale))
    print("\n" + table.to_text())
    assert len(table.rows) == len(COMPARED_METHODS)
    assert len(table.columns) == 2 * len(TABLE_DATASETS)
    # All accuracies must be valid percentages.
    for values in table.rows.values():
        assert all(0.0 <= value <= 100.0 for value in values.values())
