"""Serial vs parallel evaluation plane over the pinned worker pool.

The paper's evaluation protocol (Sec. V-A) scores the global model on every
seen domain after each learning step; with mid-task snapshots
(``eval_every``) that becomes an O(T·R) forward-pass workload per run — the
workload this bench measures.  Both runs train identically under the parallel
round engine; only the evaluation backend differs:

* ``eval_executor="serial"`` — the historical in-process loop;
* ``eval_executor="parallel"`` — seen tasks × batch-aligned test-shard slices
  fanned over the *same* pinned pool the training rounds use, with per-worker
  test-shard caching (slices cross IPC once per run).

Accuracy matrices, per-task accuracies and the per-round eval history are
asserted bit-for-bit identical, the eval IPC log is asserted to ship each
test slice exactly once per run, and wall-clock plus IPC totals land in the
``eval_plane`` section of ``BENCH_round.json``.

Note: the speedup scales with physical cores; on a single-core CI box the
parallel plane can only match serial (minus fan-out overhead), so the bench
reports the measurement without asserting a minimum speedup.
"""

from __future__ import annotations

import numpy as np

from repro.continual.scenario import DomainIncrementalScenario
from repro.core import RefFiLConfig, RefFiLMethod
from repro.datasets.registry import build_dataset, get_dataset_spec
from repro.federated.client import LocalTrainingConfig
from repro.federated.config import FederatedConfig
from repro.federated.increment import ClientIncrementConfig
from repro.federated.simulation import FederatedDomainIncrementalSimulation
from repro.models.backbone import BackboneConfig

NUM_CLIENTS = 4
NUM_WORKERS = 4
NUM_TASKS = 2
ROUNDS_PER_TASK = 2


def _build_simulation(eval_executor: str) -> FederatedDomainIncrementalSimulation:
    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=48, test_per_domain=64, num_classes=3
    )
    backbone = BackboneConfig(
        image_size=spec.image_size, num_classes=spec.num_classes,
        base_width=8, embed_dim=32, seed=0,
    )
    dataset = build_dataset("office_caltech", spec_override=spec)
    scenario = DomainIncrementalScenario(dataset, num_tasks=NUM_TASKS)
    method = RefFiLMethod(RefFiLConfig(backbone=backbone, max_tasks=NUM_TASKS))
    config = FederatedConfig(
        increment=ClientIncrementConfig(
            initial_clients=NUM_CLIENTS, increment_per_task=1, transfer_fraction=0.5, seed=0
        ),
        clients_per_round=NUM_CLIENTS,
        rounds_per_task=ROUNDS_PER_TASK,
        local=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.05),
        eval_batch_size=16,
        seed=0,
        executor="parallel",
        num_workers=NUM_WORKERS,
        eval_executor=eval_executor,
        eval_every=1,  # the O(T·R) workload: every round scores all seen domains
    )
    return FederatedDomainIncrementalSimulation(scenario, method, config)


def test_eval_plane_serial_vs_parallel(bench_record):
    serial_sim = _build_simulation("serial")
    serial_result = serial_sim.run()
    serial_eval_s = serial_sim.timer.total("evaluation") + serial_sim.timer.total(
        "round_evaluation"
    )

    parallel_sim = _build_simulation("parallel")
    parallel_result = parallel_sim.run()
    parallel_eval_s = parallel_sim.timer.total("evaluation") + parallel_sim.timer.total(
        "round_evaluation"
    )
    eval_log = parallel_sim.eval_executor.eval_ipc_log

    # Bit-for-bit parity: the backend is a performance knob, never a results
    # knob — matrices (hence Avg/Last/FGT/BwT), per-task accuracies and the
    # per-round history must be identical.
    np.testing.assert_array_equal(serial_result.metrics.matrix, parallel_result.metrics.matrix)
    assert serial_result.per_task_accuracy == parallel_result.per_task_accuracy
    assert serial_result.round_eval_history == parallel_result.round_eval_history
    assert serial_result.round_losses == parallel_result.round_losses

    # The eval data-plane contract: each task's slices ship on its first eval
    # call of the run; every other call is pure cache hits (0 shard bytes).
    calls_per_task = ROUNDS_PER_TASK + 1  # eval_every snapshots + end-of-task
    assert len(eval_log) == NUM_TASKS * calls_per_task
    shard_bytes_per_call = [entry.shard_bytes for entry in eval_log]
    first_calls = {task * calls_per_task for task in range(NUM_TASKS)}
    for index, entry in enumerate(eval_log):
        if index in first_calls:
            assert entry.shard_bytes > 0 and entry.shards_shipped > 0
        else:
            assert entry.shard_bytes == 0 and entry.shards_shipped == 0
    total_slices = eval_log[-1].num_jobs  # the final call scores every slice
    assert sum(entry.shards_shipped for entry in eval_log) == total_slices

    speedup = serial_eval_s / parallel_eval_s if parallel_eval_s > 0 else float("inf")
    bench_record(
        "eval_plane",
        {
            "num_tasks": NUM_TASKS,
            "rounds_per_task": ROUNDS_PER_TASK,
            "eval_every": 1,
            "num_workers": NUM_WORKERS,
            "eval_calls": len(eval_log),
            "eval_jobs_total": sum(entry.num_jobs for entry in eval_log),
            "serial_eval_s": serial_eval_s,
            "parallel_eval_s": parallel_eval_s,
            "speedup": speedup,
            "shard_bytes_per_eval_call": shard_bytes_per_call,
            "shards_shipped_total": sum(entry.shards_shipped for entry in eval_log),
            "cache_hits_total": sum(entry.cache_hits for entry in eval_log),
            "parity": True,
        },
    )
    print(
        f"\nevaluation plane over {NUM_TASKS} tasks x {ROUNDS_PER_TASK} rounds "
        f"(eval_every=1, num_workers={NUM_WORKERS}):"
    )
    print(f"  serial   : {serial_eval_s * 1000:.1f} ms total eval wall-clock")
    print(f"  parallel : {parallel_eval_s * 1000:.1f} ms total eval wall-clock")
    print(f"  speedup  : {speedup:.2f}x (scales with physical cores)")
    print(f"  slice IPC: {shard_bytes_per_call} B per eval call (ships once per run)")
