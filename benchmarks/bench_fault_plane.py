"""Accuracy and overhead under injected faults — the fault plane bench.

Real federations lose clients mid-round, drop or corrupt uploads, and get
their servers bounced; a robustness claim is only worth something if the same
workload can be replayed *with* those failures and the degradation measured.
This bench runs one workload (same seed, same budget) through a ladder of
deterministic fault schedules —

* ``none``        — the clean reference run,
* ``crashes``     — clients crash mid-update and miss the round,
* ``lossy-wire``  — uploads lost in flight, recovered by bounded retries,
* ``corruption``  — upload frames bit-flipped, caught by checksums + retried,
* ``restarts``    — the server restarts every round (delta-codec acks wiped),
* ``chaos``       — all of the above at once,

and records each run's final accuracy, completed aggregations, fault counters
and wire overhead into the append-only ``fault_plane`` section of
``BENCH_round.json``.

Asserted invariants: an all-zero FaultSpec plus active checkpointing
reproduces the clean run bit-for-bit, every faulted run is deterministic per
seed (identical event log and state hash on replay), and a run resumed from
its earliest checkpoint lands on the same bits as the uninterrupted run.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import numpy as np

from conftest import run_once  # noqa: F401  (bench suite convention)
from repro.baselines import build_method
from repro.continual.scenario import DomainIncrementalScenario
from repro.datasets.registry import build_dataset, get_dataset_spec
from repro.federated import FaultSpec, parse_checkpoint_name, simulation_state_hash
from repro.federated.client import LocalTrainingConfig
from repro.federated.config import FederatedConfig
from repro.federated.increment import ClientIncrementConfig
from repro.federated.simulation import FederatedDomainIncrementalSimulation
from repro.models.backbone import BackboneConfig

NUM_CLIENTS = 4
NUM_TASKS = 2
ROUNDS_PER_TASK = 2

#: The fault-schedule ladder, mildest to nastiest.
LADDER = {
    "none": FaultSpec(),
    "crashes": FaultSpec(client_crash_rate=0.25),
    "lossy-wire": FaultSpec(upload_loss_rate=0.3),
    "corruption": FaultSpec(upload_corruption_rate=0.3),
    "restarts": FaultSpec(server_restart_every=1),
    "chaos": FaultSpec(
        client_crash_rate=0.2,
        upload_loss_rate=0.2,
        upload_corruption_rate=0.2,
        server_restart_every=2,
    ),
}


def _build_simulation(**federated_overrides) -> FederatedDomainIncrementalSimulation:
    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=48, test_per_domain=32, num_classes=3
    )
    backbone = BackboneConfig(
        image_size=spec.image_size, num_classes=spec.num_classes,
        base_width=8, embed_dim=32, seed=0,
    )
    dataset = build_dataset("office_caltech", spec_override=spec)
    scenario = DomainIncrementalScenario(dataset, num_tasks=NUM_TASKS)
    method = build_method("finetune", backbone, num_tasks=NUM_TASKS)
    config = FederatedConfig(
        increment=ClientIncrementConfig(
            initial_clients=NUM_CLIENTS, increment_per_task=1, transfer_fraction=0.5, seed=0
        ),
        clients_per_round=NUM_CLIENTS,
        rounds_per_task=ROUNDS_PER_TASK,
        local=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.05),
        eval_batch_size=16,
        seed=0,
        codec="delta",
        **federated_overrides,
    )
    return FederatedDomainIncrementalSimulation(scenario, method, config)


def test_fault_plane_ladder(bench_record):
    # Bit-for-bit guard: fault-plane knobs at rest never move a number, even
    # with aggressive retry settings and checkpointing switched on.
    clean_dir = tempfile.mkdtemp(prefix="fault-bench-clean-")
    try:
        clean_sim = _build_simulation()
        clean = clean_sim.run()
        guarded_sim = _build_simulation(
            retries=5, retry_backoff=2.0, checkpoint_every=1, checkpoint_dir=clean_dir
        )
        guarded = guarded_sim.run()
        np.testing.assert_array_equal(clean.metrics.matrix, guarded.metrics.matrix)
        assert clean.round_losses == guarded.round_losses
        assert clean.event_log == guarded.event_log
        assert simulation_state_hash(clean_sim) == simulation_state_hash(guarded_sim)
        assert guarded.fault_stats["checkpoints_written"] > 0

        # Kill-and-resume guard: restart from the *earliest* checkpoint and
        # re-train everything after it — same final bits as the full run.
        names = sorted(os.listdir(clean_dir), key=parse_checkpoint_name)
        resume_dir = tempfile.mkdtemp(prefix="fault-bench-resume-")
        try:
            shutil.copy(
                os.path.join(clean_dir, names[0]), os.path.join(resume_dir, names[0])
            )
            resumed_sim = _build_simulation(
                retries=5, retry_backoff=2.0, checkpoint_every=1,
                checkpoint_dir=resume_dir, resume=True,
            )
            resumed = resumed_sim.run()
            assert resumed.fault_stats["resumed_from"] is not None
            np.testing.assert_array_equal(clean.metrics.matrix, resumed.metrics.matrix)
            assert simulation_state_hash(resumed_sim) == simulation_state_hash(clean_sim)
        finally:
            shutil.rmtree(resume_dir, ignore_errors=True)
    finally:
        shutil.rmtree(clean_dir, ignore_errors=True)

    ladder = {}
    for name, spec in LADDER.items():
        result = _build_simulation(faults=spec).run()
        counters = {
            key: value
            for key, value in result.fault_stats.items()
            if isinstance(value, int) and value > 0
        }
        ladder[name] = {
            "avg_accuracy": result.metrics.average,
            "last_accuracy": result.metrics.last,
            "aggregations": len(result.round_losses),
            "upload_bytes": result.communication.uploaded_bytes,
            "fault_counters": counters,
        }
        if name == "none":
            assert result.fault_stats == {}
            np.testing.assert_array_equal(result.metrics.matrix, clean.metrics.matrix)

    # Determinism guard: the nastiest schedule replays exactly per seed.
    first_sim = _build_simulation(faults=LADDER["chaos"])
    first = first_sim.run()
    second_sim = _build_simulation(faults=LADDER["chaos"])
    second = second_sim.run()
    assert first.event_log == second.event_log
    assert first.fault_stats == second.fault_stats
    assert simulation_state_hash(first_sim) == simulation_state_hash(second_sim)

    bench_record(
        "fault_plane",
        {
            "num_tasks": NUM_TASKS,
            "rounds_per_task": ROUNDS_PER_TASK,
            "clients_per_round": NUM_CLIENTS,
            "retries": FederatedConfig.retries,
            "retry_backoff": FederatedConfig.retry_backoff,
            "zero_fault_parity": True,
            "checkpoint_resume_parity": True,
            "ladder": ladder,
        },
    )

    print(f"\nfault plane over {NUM_TASKS} tasks x {ROUNDS_PER_TASK} rounds "
          f"({NUM_CLIENTS} clients/round, finetune, delta codec):")
    for name, stats in ladder.items():
        counters = ", ".join(f"{k}={v}" for k, v in stats["fault_counters"].items()) or "-"
        print(f"  {name:11s}: avg {stats['avg_accuracy']:.4f}  "
              f"last {stats['last_accuracy']:.4f}  "
              f"({stats['aggregations']} aggregations, "
              f"{stats['upload_bytes']:>8d} upload bytes)  [{counters}]")
