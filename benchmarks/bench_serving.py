"""Online inference throughput and correctness — the serving-plane bench.

The serving plane answers prediction requests from versions a training run
published into the :class:`~repro.serving.registry.ModelRegistry`:

* the :class:`~repro.serving.engine.InferenceEngine` loads one version into
  an immutable snapshot and predicts batches through the kernel plane —
  ``eager`` is the evaluator's exact path, ``tape`` replays a compiled
  forward-only plan after a bit-for-bit verification pass;
* the :class:`~repro.serving.service.ServingFrontEnd` micro-batches
  concurrent single-sample requests over the engine and hot-swaps versions
  between batches as the trainer publishes.

This bench records requests/second per kernel plus under-load swap behaviour
into the append-only ``serving`` section of ``BENCH_round.json``.

Asserted invariants: served logits are bit-for-bit identical to direct
evaluation of the same registry version (engine batches AND front-end
responses), every request accepted during a burst with >= 3 concurrent hot
swaps is answered with a version the manifest knows (zero dropped, zero
mixed-version batches), and the tape serving kernel clears at least a 1.3x
requests/sec multiple over eager on repeat-shape batches.
"""

from __future__ import annotations

import tempfile
import threading
import time

import numpy as np

from conftest import run_once  # noqa: F401  (bench suite convention)
from repro.autograd.tensor import Tensor, default_dtype, no_grad
from repro.baselines.registry import build_method
from repro.models.backbone import BackboneConfig
from repro.serving.engine import InferenceEngine
from repro.serving.registry import ModelRegistry
from repro.serving.service import ServingFrontEnd

_BACKBONE = BackboneConfig(
    image_size=16, num_classes=4, base_width=4, embed_dim=16, seed=0
)
BATCH = 4          # repeat-shape micro-batch the throughput loop replays
WARMUP = 3         # trace + verify + first replay before the clock starts
REQUESTS = 100     # timed requests per kernel per round
ROUNDS = 3         # alternating eager/tape rounds; best round counts
SWAP_VERSIONS = 5  # publisher versions during the under-load burst (>= 4 swaps)
LOAD_CLIENTS = 4   # concurrent client threads during the burst


def _publish_versions(registry, method, count, jitter_seed=7):
    """Publish ``count`` distinct versions of the method's model."""
    rng = np.random.default_rng(jitter_seed)
    model = method.build_model()
    for index in range(count):
        state = model.state_dict()
        # Nudge every float tensor so each version serves different numbers.
        state = {
            key: value + rng.normal(scale=1e-3, size=np.shape(value))
            if np.asarray(value).dtype.kind == "f"
            else value
            for key, value in state.items()
        }
        registry.publish(
            name=method.name,
            state=state,
            payload=None,
            payload_codec=method.payload_codec(),
            task_id=0,
            round_index=index,
        )


def _direct_logits(registry, method, version, images):
    """The evaluator's path: load the version by hand, predict eagerly."""
    loaded = registry.load(version, method.payload_codec())
    dtype = np.float64
    for value in loaded.state.values():
        array = np.asarray(value)
        if array.dtype.kind == "f":
            dtype = array.dtype
            break
    with default_dtype(np.dtype(dtype)):
        model = method.build_model()
        model.load_state_dict(loaded.state)
    model.eval()
    with default_dtype(np.dtype(dtype)), no_grad():
        return np.asarray(method.predict_logits(model, Tensor(np.asarray(images))).data)


def _requests_per_sec(engine, images, n_requests):
    start = time.perf_counter()
    for _ in range(n_requests):
        engine.predict(images)
    return n_requests / (time.perf_counter() - start)


def test_serving_plane(bench_record):
    method = build_method("finetune", _BACKBONE, num_tasks=1)
    rng = np.random.default_rng(0)
    images = rng.uniform(-1.0, 1.0, size=(BATCH, 3, 16, 16))

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        _publish_versions(registry, method, SWAP_VERSIONS)

        # ---- parity: served logits == direct evaluation, bit for bit ---- #
        for kernel in ("eager", "tape"):
            engine = InferenceEngine(registry, method, kernel=kernel)
            info = engine.install(1)
            direct = _direct_logits(registry, method, info.version, images)
            for _ in range(WARMUP):  # covers trace, verify and replay passes
                batch = engine.predict(images)
                assert batch.version == info.version
                np.testing.assert_array_equal(batch.logits, direct)

        # Front-end parity: max_batch=1 makes every request its own batch, so
        # each response must equal the direct eval of that exact one-row batch.
        engine = InferenceEngine(registry, method, kernel="eager")
        info = engine.install(1)
        with ServingFrontEnd(engine, max_batch=1) as frontend:
            for row in range(BATCH):
                sample = images[row]
                response = frontend.predict(sample, timeout=30)
                direct = _direct_logits(
                    registry, method, info.version, sample[np.newaxis]
                )
                np.testing.assert_array_equal(response.logits, direct[0])

        # ---- throughput: tape replay vs eager on repeat-shape batches ---- #
        # Alternating best-of-N rounds: both kernels see the same thermal /
        # scheduler conditions, and the best round per kernel is the dispatch
        # cost with transient noise (GC, page faults) stripped out.
        engines = {}
        for kernel in ("eager", "tape"):
            engines[kernel] = InferenceEngine(registry, method, kernel=kernel)
            engines[kernel].install(1)
            for _ in range(WARMUP):
                engines[kernel].predict(images)
        rates = {"eager": 0.0, "tape": 0.0}
        for _ in range(ROUNDS):
            for kernel, engine in engines.items():
                rates[kernel] = max(
                    rates[kernel], _requests_per_sec(engine, images, REQUESTS)
                )
        tape_multiple = rates["tape"] / rates["eager"]
        assert tape_multiple >= 1.3, (
            f"tape serving must clear 1.3x eager requests/sec, got {tape_multiple:.2f}x"
        )

        # ---- hot swap under load: zero drops across >= 3 swaps ---- #
        engine = InferenceEngine(registry, method, kernel="tape")
        engine.install(1)
        known_versions = {info.version for info in registry.list_versions()}
        responses, errors = [], []
        lock = threading.Lock()
        with ServingFrontEnd(engine, max_queue=4096, max_batch=8, num_workers=2) as frontend:
            swap_barrier = threading.Barrier(LOAD_CLIENTS + 1)

            def client(seed):
                local = []
                swap_barrier.wait()
                for _ in range(REQUESTS // LOAD_CLIENTS):
                    try:
                        local.append(frontend.predict(images[seed % BATCH], timeout=30))
                    except Exception as error:  # any drop/timeout fails the bench
                        with lock:
                            errors.append(error)
                        return
                with lock:
                    responses.extend(local)

            threads = [
                threading.Thread(target=client, args=(seed,))
                for seed in range(LOAD_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            swap_barrier.wait()
            for version in range(2, SWAP_VERSIONS + 1):  # >= 3 hot swaps
                engine.install(version)
                frontend.notify_publish()
                time.sleep(0.01)
            for thread in threads:
                thread.join()
            telemetry = frontend.telemetry()

        assert not errors, f"dropped/failed requests under swap load: {errors[:3]}"
        expected = (REQUESTS // LOAD_CLIENTS) * LOAD_CLIENTS
        assert len(responses) == expected, (
            f"answered {len(responses)} of {expected} accepted requests"
        )
        served_versions = {response.version for response in responses}
        assert served_versions <= known_versions  # only manifest-known versions
        assert engine.swap_count >= 3, f"only {engine.swap_count} swaps happened"
        assert telemetry["total_requests"] == expected
        assert telemetry["rejected"] == 0

        bench_record(
            "serving",
            {
                "batch": BATCH,
                "requests": REQUESTS,
                "eager_requests_per_sec": rates["eager"],
                "tape_requests_per_sec": rates["tape"],
                "tape_multiple": tape_multiple,
                "parity_bit_identical": True,
                "swap_count": engine.swap_count,
                "swap_load_requests": expected,
                "swap_load_dropped": 0,
                "versions_served_under_load": sorted(served_versions),
                "p95_latency_by_version": {
                    str(version): stats["p95_latency"]
                    for version, stats in telemetry["versions"].items()
                },
            },
        )

        print(
            f"\nserving plane (batch {BATCH}, {REQUESTS} requests):\n"
            f"  eager {rates['eager']:8.1f} req/s\n"
            f"  tape  {rates['tape']:8.1f} req/s ({tape_multiple:.2f}x, bit-identical)\n"
            f"  swaps under load: {engine.swap_count}, "
            f"{expected} requests answered, 0 dropped"
        )
