"""Table VII: ablation of the CDAP / GPL / DPCL components on OfficeCaltech10."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.tables import TABLE7_ROWS, table7_ablation


def test_table7_ablation(benchmark, scale):
    table = run_once(benchmark, lambda: table7_ablation(scale=scale))
    print("\n" + table.to_text())
    assert len(table.rows) == len(TABLE7_ROWS)
    # The baseline row has zero deltas by construction.
    baseline_label = TABLE7_ROWS[0][0]
    assert table.value(baseline_label, "dAvg") == 0.0
    # Shape target: the full method should improve over the plain baseline.
    full_label = TABLE7_ROWS[-1][0]
    print(
        f"full RefFiL vs baseline: dAvg={table.value(full_label, 'dAvg'):+.2f}, "
        f"dLast={table.value(full_label, 'dLast'):+.2f}"
    )
