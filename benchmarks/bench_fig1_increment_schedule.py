"""Fig. 1(a): the gradual client-increment schedule versus the cliff-style transition.

The paper's Fig. 1(a) is an illustration, not a measurement; this bench
regenerates the underlying schedule (how many Old / In-between / New clients
exist at every task) for both the paper's gradual setting (80% transfer,
clients added per task) and the cliff-style setting of prior FCL work (100%
transfer, fixed population) and prints the two series.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.federated.increment import ClientIncrementConfig, ClientIncrementSchedule


def _traces():
    gradual = ClientIncrementSchedule(
        ClientIncrementConfig(initial_clients=10, increment_per_task=2, transfer_fraction=0.8, seed=0)
    ).schedule_trace(5)
    cliff = ClientIncrementSchedule(
        ClientIncrementConfig(initial_clients=10, increment_per_task=0, transfer_fraction=1.0, seed=0)
    ).schedule_trace(5)
    return gradual, cliff


def test_fig1_increment_schedule(benchmark):
    gradual, cliff = benchmark.pedantic(_traces, rounds=1, iterations=1)
    print("\nFig.1(a) gradual transition (RefFiL setting):")
    for row in gradual:
        print(f"  task {row['task']}: old={row['old']:2d} in-between={row['in_between']:2d} "
              f"new={row['new']:2d} total={row['total']:2d}")
    print("Fig.1(a) cliff transition (prior FCL setting):")
    for row in cliff:
        print(f"  task {row['task']}: old={row['old']:2d} in-between={row['in_between']:2d} "
              f"new={row['new']:2d} total={row['total']:2d}")
    # Gradual: population grows and a mixture of groups coexists after task 0.
    assert gradual[-1]["total"] > gradual[0]["total"]
    assert all(row["old"] > 0 for row in gradual[1:])
    # Cliff: everyone transitions, nobody stays on old data.
    assert all(row["old"] == 0 for row in cliff)
    assert cliff[-1]["total"] == cliff[0]["total"]
