"""Table III: per-learning-step accuracy breakdown on every dataset (default domain order)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.tables import COMPARED_METHODS, TABLE_DATASETS, table3_per_task


def test_table3_per_task(benchmark, scale):
    tables = run_once(benchmark, lambda: table3_per_task(scale=scale))
    assert set(tables) == set(TABLE_DATASETS)
    for dataset, table in tables.items():
        print("\n" + table.to_text())
        assert len(table.rows) == len(COMPARED_METHODS)
        # The last step column equals the paper's "Last" metric and the Avg
        # column is the mean of the step columns.
        for label, values in table.rows.items():
            steps = [values[c] for c in table.columns if c != "Avg"]
            assert abs(sum(steps) / len(steps) - values["Avg"]) < 1e-6
