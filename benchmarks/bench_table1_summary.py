"""Table I: Avg/Last accuracy of all eight methods on the four datasets (default domain order)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.tables import COMPARED_METHODS, TABLE_DATASETS, table1_summary


def test_table1_summary(benchmark, scale):
    table = run_once(benchmark, lambda: table1_summary(scale=scale))
    print("\n" + table.to_text())
    # One row per compared method, two columns (avg/last) per dataset.
    assert len(table.rows) == len(COMPARED_METHODS)
    assert len(table.columns) == 2 * len(TABLE_DATASETS)
    # Reproduction shape target: RefFiL should be at or near the top on Avg.
    for dataset in TABLE_DATASETS:
        ranking = sorted(
            table.column(f"{dataset}:avg").items(), key=lambda item: -item[1]
        )
        position = [label for label, _ in ranking].index("RefFiL")
        print(f"RefFiL rank on {dataset} (avg): {position + 1}/{len(ranking)}")
