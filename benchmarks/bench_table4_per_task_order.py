"""Table IV: per-learning-step accuracy breakdown under the shuffled domain order."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.datasets.registry import get_alternate_domain_order
from repro.experiments.tables import COMPARED_METHODS, TABLE_DATASETS, table4_per_task


def test_table4_per_task_order(benchmark, scale):
    tables = run_once(benchmark, lambda: table4_per_task(scale=scale))
    assert set(tables) == set(TABLE_DATASETS)
    for dataset, table in tables.items():
        print("\n" + table.to_text())
        assert len(table.rows) == len(COMPARED_METHODS)
        # The step columns must follow the alternate domain order.
        step_columns = [c for c in table.columns if c != "Avg"]
        assert tuple(step_columns) == tuple(get_alternate_domain_order(dataset))[: len(step_columns)]
