"""Shared helpers for the benchmark suite.

Every bench regenerates one table or figure of the paper at the scale selected
by the ``REPRO_SCALE`` environment variable (default ``tiny``).  Training runs
are memoised by :mod:`repro.experiments.runner`, so benches that are different
views of the same runs (Table I vs Table III) only pay for them once per
session.  Benches execute their workload exactly once (``rounds=1``): the
quantity being "benchmarked" is the wall-clock cost of regenerating the
table, and the printed output is the table itself.
"""

from __future__ import annotations

import pytest

from repro.experiments import get_scale


@pytest.fixture(scope="session")
def scale():
    return get_scale()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
