"""Shared helpers for the benchmark suite.

Every bench regenerates one table or figure of the paper at the scale selected
by the ``REPRO_SCALE`` environment variable (default ``tiny``).  Training runs
are memoised by :mod:`repro.experiments.runner`, so benches that are different
views of the same runs (Table I vs Table III) only pay for them once per
session.  Benches execute their workload exactly once (``rounds=1``): the
quantity being "benchmarked" is the wall-clock cost of regenerating the
table, and the printed output is the table itself.

Perf-tracking benches (``bench_round_parallel``, the fig-2 precision bench)
additionally push their measurements into the session-scoped ``bench_record``
fixture; at session end everything collected is written to
``BENCH_round.json`` at the repository root.  Sections are append-only: a
re-measured section keeps its prior snapshots under ``history``, so the
performance trajectory stays machine-readable across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.experiments import get_scale

_BENCH_RESULTS: Dict[str, dict] = {}
_BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_round.json"


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture(scope="session")
def bench_record():
    """Collector for machine-readable perf results, flushed to BENCH_round.json."""

    def record(section: str, data: dict) -> None:
        _BENCH_RESULTS.setdefault(section, {}).update(data)

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _BENCH_RESULTS or exitstatus != 0:
        return
    # Sections are append-only across sessions: when a section is re-measured,
    # its previous content is pushed onto the section's "history" list (oldest
    # first) instead of being overwritten, so numbers recorded by earlier PRs
    # survive every later bench run.  Sections not measured this session are
    # left untouched.  The environment (scale, cpu count, time) is stamped per
    # snapshot, since entries may come from runs under different conditions.
    results: Dict[str, dict] = {}
    if _BENCH_JSON_PATH.exists():
        try:
            results = json.loads(_BENCH_JSON_PATH.read_text()).get("results", {})
        except (json.JSONDecodeError, OSError):
            results = {}
    try:
        scale_name = get_scale().value
    except ValueError:
        scale_name = os.environ.get("REPRO_SCALE", "tiny")
    environment = {
        "scale": scale_name,
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    for section, data in _BENCH_RESULTS.items():
        previous = dict(results.get(section, {}))
        history = previous.pop("history", [])
        if previous:
            history = history + [previous]
        # Carry forward keys the session did not re-measure (e.g. the slow
        # bench's keys after a fast-only run) so partial invocations never
        # shrink a section's latest view.  "environment" describes this
        # session's measurements only; a carried key's true provenance is the
        # newest history snapshot that recorded it, which kept its own stamp.
        results[section] = {**previous, **data, "environment": environment, "history": history}
    _BENCH_JSON_PATH.write_text(
        json.dumps({"results": results}, indent=2, sort_keys=True) + "\n"
    )


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
