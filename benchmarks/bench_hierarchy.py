"""Virtual client populations + tree aggregation — the hierarchy bench.

The north-star scale is millions of devices; the bench asserts the two
properties that make that scale *simulable* on one machine:

* **O(cohort) memory** — a round over a 100k-virtual-client population costs
  the same peak memory as over a 1k one, because clients are lazy ``(seed,
  partition-spec)`` recipes and only the selected cohort ever materializes.
* **Population-independent wire cost** — measured bytes per round depend on
  the cohort and the model, not the population (up to the few bytes pickle
  spends on larger client-id integers).

Asserted invariants: the default eager/star configuration reproduces the
pre-hierarchy bits exactly (``virtual_clients=True`` at population 0 is
hash-for-hash the eager run); a tree reduce matches the flat star within
float tolerance while its edge partials ride measured, checksummed wire
frames; and fleet runs are deterministic per seed.  Results land in the
append-only ``hierarchy`` section of ``BENCH_round.json``.
"""

from __future__ import annotations

import resource
import tracemalloc

import numpy as np

from conftest import run_once  # noqa: F401  (bench suite convention)
from repro.baselines import build_method
from repro.continual.scenario import DomainIncrementalScenario
from repro.datasets.registry import build_dataset, get_dataset_spec
from repro.federated import simulation_state_hash
from repro.federated.client import LocalTrainingConfig
from repro.federated.config import FederatedConfig
from repro.federated.increment import ClientIncrementConfig
from repro.federated.simulation import FederatedDomainIncrementalSimulation
from repro.models.backbone import BackboneConfig

NUM_CLIENTS = 4
NUM_TASKS = 2
ROUNDS_PER_TASK = 2
SMALL_POPULATION = 1_000
LARGE_POPULATION = 100_000


def _build_simulation(**federated_overrides) -> FederatedDomainIncrementalSimulation:
    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=48, test_per_domain=32, num_classes=3
    )
    backbone = BackboneConfig(
        image_size=spec.image_size, num_classes=spec.num_classes,
        base_width=8, embed_dim=32, seed=0,
    )
    dataset = build_dataset("office_caltech", spec_override=spec)
    scenario = DomainIncrementalScenario(dataset, num_tasks=NUM_TASKS)
    method = build_method("finetune", backbone, num_tasks=NUM_TASKS)
    config = FederatedConfig(
        increment=ClientIncrementConfig(
            initial_clients=NUM_CLIENTS, increment_per_task=1, transfer_fraction=0.5, seed=0
        ),
        clients_per_round=NUM_CLIENTS,
        rounds_per_task=ROUNDS_PER_TASK,
        local=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.05),
        eval_batch_size=16,
        seed=0,
        **federated_overrides,
    )
    return FederatedDomainIncrementalSimulation(scenario, method, config)


def _run_fleet(population):
    """One fleet run under tracemalloc; returns (result, peak allocation bytes)."""
    simulation = _build_simulation(
        virtual_clients=True,
        population=population,
        reduce_backend="tree",
        tree_fanout=2,
    )
    tracemalloc.start()
    try:
        result = simulation.run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return simulation, result, peak


def test_hierarchy_scale(bench_record):
    # ------------------------------------------------------------------ #
    # Bit-for-bit guard: the virtual plane at population 0 IS the eager run.
    # ------------------------------------------------------------------ #
    eager_sim = _build_simulation()
    eager = eager_sim.run()
    virtual_sim = _build_simulation(virtual_clients=True)
    virtual = virtual_sim.run()
    np.testing.assert_array_equal(eager.metrics.matrix, virtual.metrics.matrix)
    assert eager.round_losses == virtual.round_losses
    assert eager.event_log == virtual.event_log
    assert simulation_state_hash(eager_sim) == simulation_state_hash(virtual_sim)

    # ------------------------------------------------------------------ #
    # Tree vs flat star: float-tolerance numbers, measured edge frames.
    # ------------------------------------------------------------------ #
    tree_sim = _build_simulation(reduce_backend="tree", tree_fanout=2)
    tree = tree_sim.run()
    mask = ~np.isnan(np.asarray(eager.metrics.matrix))
    np.testing.assert_allclose(
        np.asarray(tree.metrics.matrix)[mask],
        np.asarray(eager.metrics.matrix)[mask],
        rtol=1e-6,
        atol=1e-6,
    )
    # 4 leaves at fanout 2: level 1 ships 2 partials, the root combines
    # in-process — 2 edge frames per aggregation round.
    aggregations = NUM_TASKS * ROUNDS_PER_TASK
    assert tree.communication.edge_frames == 2 * aggregations
    assert tree.communication.edge_bytes > 0

    # ------------------------------------------------------------------ #
    # The headline: a 100k-virtual-client round costs what a 1k one does.
    # ------------------------------------------------------------------ #
    small_sim, small, small_peak = _run_fleet(SMALL_POPULATION)
    large_sim, large, large_peak = _run_fleet(LARGE_POPULATION)

    # Peak working set is O(cohort), not O(population): allow 50% jitter or
    # 8 MiB of slack, nowhere near the 100x a materialized population costs.
    assert large_peak <= max(1.5 * small_peak, small_peak + 8 * 2**20), (
        f"peak RSS grew with population: {small_peak} -> {large_peak}"
    )
    # Wire cost is population-independent up to pickle's integer widths
    # (client ids >= 65536 cost ~2 extra bytes per frame).
    small_bytes = small.communication.total_bytes
    large_bytes = large.communication.total_bytes
    assert abs(large_bytes - small_bytes) <= 0.01 * small_bytes, (
        f"measured bytes depend on population: {small_bytes} vs {large_bytes}"
    )
    # O(cohort) bookkeeping: the plane held at most a cache of shards.
    assert len(large_sim.virtual._cache) <= large_sim.virtual._cache_size
    assert not large_sim._training_data

    # Determinism guard: the 100k fleet replays exactly per seed.
    replay_sim, replay, _ = _run_fleet(LARGE_POPULATION)
    assert replay.event_log == large.event_log
    assert simulation_state_hash(replay_sim) == simulation_state_hash(large_sim)

    bench_record(
        "hierarchy",
        {
            "num_tasks": NUM_TASKS,
            "rounds_per_task": ROUNDS_PER_TASK,
            "clients_per_round": NUM_CLIENTS,
            "virtual_parity": True,
            "tree_fanout": 2,
            "tree_edge_frames": tree.communication.edge_frames,
            "tree_edge_bytes": tree.communication.edge_bytes,
            "tree_last_accuracy": tree.metrics.last,
            "small_population": SMALL_POPULATION,
            "large_population": LARGE_POPULATION,
            "small_peak_alloc_bytes": small_peak,
            "large_peak_alloc_bytes": large_peak,
            "small_total_bytes": small_bytes,
            "large_total_bytes": large_bytes,
            "large_last_accuracy": large.metrics.last,
            "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            "state_hash_large": simulation_state_hash(large_sim),
        },
    )

    print(f"\nhierarchy over {NUM_TASKS} tasks x {ROUNDS_PER_TASK} rounds "
          f"({NUM_CLIENTS} clients/round, finetune):")
    print(f"  eager == virtual (population 0): bit-for-bit")
    print(f"  tree (fanout 2) vs flat: <=1e-6, "
          f"{tree.communication.edge_frames} edge frames, "
          f"{tree.communication.edge_bytes} edge bytes")
    print(f"  fleet {SMALL_POPULATION:>6d} clients: peak {small_peak:>10d} B, "
          f"wire {small_bytes} B, last acc {small.metrics.last:.4f}")
    print(f"  fleet {LARGE_POPULATION:>6d} clients: peak {large_peak:>10d} B, "
          f"wire {large_bytes} B, last acc {large.metrics.last:.4f}")
