"""Bytes-on-wire and accuracy per wire codec — the communication plane bench.

RefFiL's deployability argument is communication-bound: model weights plus
per-class prompt groups ride every round.  This bench runs the same RefFiL
workload through every wire codec of the loopback transport and records what
each one actually puts on the wire (the ledger's *measured* encoded frame
lengths, not ``nbytes`` estimates) next to the accuracy it delivers:

* ``identity`` — raw frames, the measured baseline;
* ``delta``    — lossless sparse diff vs. the last acknowledged broadcast;
* ``quantize8`` / ``quantize16`` — uniform per-tensor quantization;
* ``topk``     — upload-only magnitude sparsification of the weight diff.

Asserted invariants: the lossless codecs reproduce the ``direct``
(no-wire-format) accuracy matrix and round losses bit-for-bit, and
``quantize8`` cuts measured upload bytes by at least 4x vs. ``identity``
(float64 weights become 1-byte codes).  Lossy codecs additionally report
their accuracy delta next to their compression ratio — the trade the
constrained-device scenario family is about.  A bandwidth-constrained
straggler run (per-client budgets, drop mode) is recorded alongside.

Everything lands in the append-only ``comm_plane`` section of
``BENCH_round.json``.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once  # noqa: F401  (bench suite convention)
from repro.continual.scenario import DomainIncrementalScenario
from repro.core import RefFiLConfig, RefFiLMethod
from repro.datasets.registry import build_dataset, get_dataset_spec
from repro.federated.client import LocalTrainingConfig
from repro.federated.config import FederatedConfig
from repro.federated.increment import ClientIncrementConfig
from repro.federated.simulation import FederatedDomainIncrementalSimulation
from repro.models.backbone import BackboneConfig

NUM_CLIENTS = 4
NUM_TASKS = 2
ROUNDS_PER_TASK = 2
CODECS = ("identity", "delta", "quantize8", "quantize16", "topk")


def _build_simulation(**federated_overrides) -> FederatedDomainIncrementalSimulation:
    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=48, test_per_domain=32, num_classes=3
    )
    backbone = BackboneConfig(
        image_size=spec.image_size, num_classes=spec.num_classes,
        base_width=8, embed_dim=32, seed=0,
    )
    dataset = build_dataset("office_caltech", spec_override=spec)
    scenario = DomainIncrementalScenario(dataset, num_tasks=NUM_TASKS)
    method = RefFiLMethod(RefFiLConfig(backbone=backbone, max_tasks=NUM_TASKS))
    config = FederatedConfig(
        increment=ClientIncrementConfig(
            initial_clients=NUM_CLIENTS, increment_per_task=1, transfer_fraction=0.5, seed=0
        ),
        clients_per_round=NUM_CLIENTS,
        rounds_per_task=ROUNDS_PER_TASK,
        local=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.05),
        eval_batch_size=16,
        seed=0,
        **federated_overrides,
    )
    return FederatedDomainIncrementalSimulation(scenario, method, config)


def test_comm_plane_codecs(bench_record):
    baseline = _build_simulation(transport="direct").run()

    per_codec = {}
    for codec in CODECS:
        sim = _build_simulation(transport="loopback", codec=codec)
        result = sim.run()
        ledger = result.communication
        assert ledger.measured  # every round's bytes came from encoded frames
        # The ledger totals must be exactly the sum of the per-client frame
        # lengths it recorded — no estimate path anywhere.
        assert ledger.uploaded_bytes == sum(r.upload_bytes for r in ledger.records)
        assert ledger.broadcast_bytes == sum(r.broadcast_bytes for r in ledger.records)
        per_codec[codec] = {
            "upload_bytes": ledger.uploaded_bytes,
            "broadcast_bytes": ledger.broadcast_bytes,
            "total_bytes": ledger.total_bytes,
            "avg_accuracy": result.metrics.average,
            "accuracy_delta_vs_identity": None,  # filled below
            "matrix": result.metrics.matrix,
            "round_losses": result.round_losses,
        }

    identity = per_codec["identity"]
    for codec, stats in per_codec.items():
        stats["upload_compression_x"] = identity["upload_bytes"] / stats["upload_bytes"]
        stats["broadcast_compression_x"] = (
            identity["broadcast_bytes"] / stats["broadcast_bytes"]
        )
        stats["accuracy_delta_vs_identity"] = (
            stats["avg_accuracy"] - identity["avg_accuracy"]
        )

    # Lossless codecs are results-invariant: bit-for-bit against the no-wire
    # transport, in both the accuracy matrix and the loss trajectory.
    for codec in ("identity", "delta"):
        np.testing.assert_array_equal(baseline.metrics.matrix, per_codec[codec]["matrix"])
        assert baseline.round_losses == per_codec[codec]["round_losses"]
    # float64 weights as 1-byte codes: at least 4x less measured upload.
    assert per_codec["quantize8"]["upload_compression_x"] >= 4.0
    assert per_codec["quantize16"]["upload_compression_x"] >= 2.0
    assert per_codec["topk"]["upload_compression_x"] >= 2.0

    # A constrained-device scenario on top: per-client uplink budgets sized to
    # the identity frame, stragglers dropped.
    frame = identity["upload_bytes"] // (NUM_TASKS * ROUNDS_PER_TASK * NUM_CLIENTS)
    straggler = _build_simulation(
        transport="loopback", codec="identity",
        bandwidth_limit=frame, drop_stragglers=True,
    ).run()

    bench_record(
        "comm_plane",
        {
            "num_tasks": NUM_TASKS,
            "rounds_per_task": ROUNDS_PER_TASK,
            "clients_per_round": NUM_CLIENTS,
            "codecs": {
                codec: {
                    key: value
                    for key, value in stats.items()
                    if key not in ("matrix", "round_losses")
                }
                for codec, stats in per_codec.items()
            },
            "lossless_parity": True,
            "straggler_scenario": {
                "bandwidth_limit": frame,
                "dropped_uploads": straggler.communication.dropped_uploads,
                "dropped_upload_bytes": straggler.communication.dropped_upload_bytes,
                "avg_accuracy": straggler.metrics.average,
                "accuracy_delta_vs_identity": straggler.metrics.average
                - identity["avg_accuracy"],
            },
        },
    )

    print(f"\ncommunication plane over {NUM_TASKS} tasks x {ROUNDS_PER_TASK} rounds "
          f"({NUM_CLIENTS} clients/round, RefFiL, measured wire frames):")
    for codec, stats in per_codec.items():
        print(f"  {codec:11s}: up {stats['upload_bytes']:9d} B "
              f"({stats['upload_compression_x']:5.2f}x)  "
              f"down {stats['broadcast_bytes']:9d} B "
              f"({stats['broadcast_compression_x']:5.2f}x)  "
              f"avg {stats['avg_accuracy']:.4f} "
              f"({stats['accuracy_delta_vs_identity']:+.4f})")
    print(f"  stragglers : budget {frame} B/client -> "
          f"{straggler.communication.dropped_uploads} uploads dropped, "
          f"avg {straggler.metrics.average:.4f}")
