"""Plan replay optimized vs unoptimized — the plan-optimizer bench.

The plan optimizer (:mod:`repro.autograd.planopt`) rewrites a compiled
:class:`~repro.autograd.tape.Plan` at compile time: dead records that never
reach the loss are dropped, adjacent single-consumer elementwise runs fuse
into one dispatch, and every poolable intermediate (forward activations and
gradient accumulators alike) is served from a per-plan buffer arena instead
of a fresh allocation, with ufuncs writing straight into the reused buffers.
All of it is bit-for-bit with unoptimized replay — the passes only change
*where* results land, never which ops run in which order.

The workload here is the regime those passes exist for: a step dominated by
elementwise dispatch and allocator traffic (an MLP whose body is a deep
tanh/sigmoid/relu chain) rather than by BLAS time.  Both plans are compiled
from the *same* tape, replayed back to back, and the results are checked
bitwise before any timing is trusted.

Three measurement controls keep the timing honest on a shared machine:

* the timed measurement runs in a *fresh interpreter* (this file re-executed
  as a subprocess), because allocator state is part of what is measured:
  earlier tests in a shared pytest process leave freed heap chunks that
  glibc serves big allocations from, hiding the very allocation cost the
  arena removes.  Parity is still asserted in-process — it does not depend
  on timing;
* glibc's mmap threshold is pinned at the activation size
  (``mallopt(M_MMAP_THRESHOLD)``), because its *dynamic* adjustment makes
  big-block allocation cost bimodal — in a fresh heap, every unpooled
  activation then takes the same big-block path every step.  The
  activations are kept small enough that the optimized plan's arena stays
  cache-resident, so its throughput barely moves under outside load;
* the two plans are timed in alternating interleaved blocks and each keeps
  its best block, so transient machine load cancels out of the ratio.

Asserted invariants: optimized replay reproduces the unoptimized loss and
every parameter gradient bit-for-bit, clears at least a 1.3x steps/sec
multiple, and cuts the tracemalloc steady-state peak (allocations per step
once the arena is warm) by at least 30%.  Results land in the append-only
``plan_optimizer`` section of ``BENCH_round.json``.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import json
import os
import subprocess
import sys
import time
import tracemalloc

import numpy as np

if __name__ == "__main__":  # fresh-process measurement: no pytest conftest
    sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))
else:
    from conftest import run_once  # noqa: F401  (bench suite convention)

from repro.autograd import functional as F
from repro.autograd.tape import Plan, Tape, tracing
from repro.autograd.tensor import Tensor
from repro.nn import Parameter

DEPTH = 16   # elementwise blocks: deep enough that dispatch + allocation
WIDTH = 64   # dominate the three matmuls bracketing the chain
BATCH = 64   # 64 x 64 float64 = 32KiB per activation: at the pinned mmap
             # threshold, so every unpooled intermediate takes the big-block
             # allocator path, while the arena's working set stays cache-sized
BLOCK_STEPS = 30   # steps per timed block
BLOCK_REPS = 6     # interleaved (plain, optimized) block pairs; best-of wins
WARMUP_STEPS = 8
TRACED_STEPS = 3   # steady-state window for the tracemalloc peak

SPEEDUP_FLOOR = 1.3
ALLOC_DROP_FLOOR = 0.30

ACTIVATION_BYTES = BATCH * WIDTH * 8


def _pin_mmap_threshold() -> bool:
    """Disable glibc's dynamic mmap threshold for deterministic timing."""
    try:
        libc = ctypes.CDLL(ctypes.util.find_library("c") or "libc.so.6")
        M_MMAP_THRESHOLD = -3
        return bool(libc.mallopt(M_MMAP_THRESHOLD, ACTIVATION_BYTES))
    except (OSError, AttributeError):
        return False


def _build_step():
    """One dispatch-bound training step: matmul, deep elementwise body, loss."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((BATCH, WIDTH)))
    params = [Parameter(rng.standard_normal((WIDTH, WIDTH)) * 0.1) for _ in range(3)]

    def loss_fn(inputs):
        h = inputs @ params[0]
        for _ in range(DEPTH):
            h = F.tanh(h * 0.5) + F.sigmoid(h)
            h = F.relu(h) * 0.9 + h * 0.1
        h = (h @ params[1]) + (h @ params[2])
        return (h * h).sum() * (1.0 / (BATCH * WIDTH))

    tape = Tape()
    tape.mark_input("x", x)
    with tracing(tape):
        loss = loss_fn(x)
    return tape, loss, {"x": x.data}


def _snapshot(plan: Plan, bindings: dict) -> dict:
    """One replay's loss and gradients, copied out of any reused buffers."""
    loss, leaf_grads = plan.execute(bindings)
    # Copy: optimized replay serves gradients from arena buffers that the
    # next execute overwrites in place.
    grads = {slot: np.array(grad, copy=True) for slot, grad in leaf_grads.items()}
    return {"loss": float(loss), "grads": grads}


def _interleaved_best(plain: Plan, optimized: Plan, bindings: dict) -> dict:
    """Best steps/sec per plan over alternating timed blocks.

    Interleaving means a load spike hits both plans about equally, and
    best-of picks each plan's least-disturbed block, so the reported *ratio*
    is stable even when absolute throughput wobbles.
    """
    for _ in range(WARMUP_STEPS):
        plain.execute(bindings)
        optimized.execute(bindings)
    best = {"plain": 0.0, "optimized": 0.0}
    for _ in range(BLOCK_REPS):
        for name, plan in (("plain", plain), ("optimized", optimized)):
            start = time.perf_counter()
            for _ in range(BLOCK_STEPS):
                plan.execute(bindings)
            elapsed = time.perf_counter() - start
            best[name] = max(best[name], BLOCK_STEPS / elapsed)
    return best


def _steady_state_peak(plan: Plan, bindings: dict) -> int:
    """tracemalloc peak over a window where arena/grad buffers already exist,
    so the number is per-step allocator traffic, not one-time warmup cost."""
    plan.execute(bindings)
    tracemalloc.start()
    for _ in range(TRACED_STEPS):
        plan.execute(bindings)
    peak_bytes = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    return peak_bytes


def _assert_parity() -> dict:
    """Compile both plans from one tape; assert structure and bitwise parity.

    Returns the structural numbers so both the in-process test and the
    fresh-process measurement can report them.
    """
    tape, loss, bindings = _build_step()
    plain = Plan(tape, loss, optimize=False)
    optimized = Plan(tape, loss, optimize=True)
    assert optimized.opt is not None and plain.opt is None
    assert len(optimized.opt.program) < len(plain.records), (
        "fusion collapsed no elementwise runs on a chain-heavy workload"
    )
    assert optimized.opt.arena_buffers > 0

    # Bit-for-bit before any timing is trusted.
    base = _snapshot(plain, bindings)
    fast = _snapshot(optimized, bindings)
    assert fast["loss"] == base["loss"]
    assert set(fast["grads"]) == set(base["grads"])
    for slot, grad in base["grads"].items():
        np.testing.assert_array_equal(fast["grads"][slot], grad)
        assert fast["grads"][slot].dtype == grad.dtype

    return {
        "plain": plain,
        "optimized": optimized,
        "bindings": bindings,
        "records": len(plain.records),
        "instructions": len(optimized.opt.program),
        "fusion_chains": len(optimized.opt.chains),
        "arena_buffers": optimized.opt.arena_buffers,
        "dropped_records": len(optimized.opt.dropped),
    }


def _measure() -> dict:
    """The full timed measurement; meant to run in a fresh interpreter."""
    pinned = _pin_mmap_threshold()
    setup = _assert_parity()
    plain, optimized, bindings = setup["plain"], setup["optimized"], setup["bindings"]

    best = _interleaved_best(plain, optimized, bindings)
    plain_peak = _steady_state_peak(plain, bindings)
    optimized_peak = _steady_state_peak(optimized, bindings)

    return {
        "depth": DEPTH,
        "width": WIDTH,
        "batch": BATCH,
        "mmap_threshold_pinned": pinned,
        "records": setup["records"],
        "instructions": setup["instructions"],
        "fusion_chains": setup["fusion_chains"],
        "arena_buffers": setup["arena_buffers"],
        "dropped_records": setup["dropped_records"],
        "plain_steps_per_sec": best["plain"],
        "optimized_steps_per_sec": best["optimized"],
        "speedup": best["optimized"] / best["plain"],
        "plain_peak_bytes": plain_peak,
        "optimized_peak_bytes": optimized_peak,
        "alloc_drop": 1.0 - optimized_peak / plain_peak,
        "bit_identical": True,
    }


def test_plan_optimizer_throughput(bench_record):
    # Parity holds regardless of process state — assert it right here, so a
    # numeric regression fails in-process with a full diff.
    _assert_parity()

    # Timing runs in a fresh interpreter: a shared pytest process has a warm
    # heap whose free chunks serve the plain plan's big allocations for near
    # nothing, hiding the allocation cost the arena removes (and that any
    # fresh training process would pay).
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__)],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    assert proc.returncode == 0, (
        f"fresh-process measurement failed:\n{proc.stdout}\n{proc.stderr}"
    )
    result = json.loads(proc.stdout.splitlines()[-1])

    speedup = result["speedup"]
    alloc_drop = result["alloc_drop"]
    print(
        f"\nplan optimizer (depth={DEPTH} width={WIDTH} batch={BATCH}, "
        f"{result['records']} records -> {result['instructions']} instrs, "
        f"{result['fusion_chains']} fused chains, "
        f"{result['arena_buffers']} arena buffers):\n"
        f"  unoptimized {result['plain_steps_per_sec']:8.1f} steps/s  "
        f"peak {result['plain_peak_bytes'] / 1024:8.0f} KiB\n"
        f"  optimized   {result['optimized_steps_per_sec']:8.1f} steps/s  "
        f"peak {result['optimized_peak_bytes'] / 1024:8.0f} KiB  "
        f"({speedup:.2f}x, alloc -{alloc_drop:.0%}, bit-identical)"
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"optimized replay must clear {SPEEDUP_FLOOR}x unoptimized, got {speedup:.2f}x"
    )
    assert alloc_drop >= ALLOC_DROP_FLOOR, (
        f"arena must cut steady-state allocations by >= {ALLOC_DROP_FLOOR:.0%}, "
        f"got {alloc_drop:.0%}"
    )

    bench_record("plan_optimizer", result)


if __name__ == "__main__":
    print(json.dumps(_measure()))

