"""Accuracy vs. simulated time across aggregation regimes — the temporal plane bench.

Real cross-device federations are governed by stragglers: a synchronous round
lasts as long as its slowest device, while asynchronous regimes keep fast
devices busy at the price of stale updates.  This bench runs the same
workload (same budget of local updates, same seed) through the three
aggregation regimes of the temporal plane —

* ``mode="sync"``     — barrier rounds (FedAvg),
* ``mode="async"``    — per-arrival application with polynomial staleness
  decay (FedAsync-style),
* ``mode="buffered"`` — aggregate every K arrivals (FedBuff-style),

under three device-heterogeneity tiers (``mild`` / ``moderate`` /
``extreme``: increasingly spread compute speeds and link rates, decreasing
availability, per-task churn), and records each run's accuracy-vs-simulated-
time curve (one point per ``eval_every`` aggregation, timestamped by the
discrete-event clock) into the append-only ``async_plane`` section of
``BENCH_round.json``.

Asserted invariants: ``mode="sync"`` under the always-online ``homogeneous``
tier reproduces the instantaneous-profile numbers bit-for-bit (the clock
times the run without touching it), async/buffered runs are deterministic
per seed, and every non-instant run advances the simulated clock.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once  # noqa: F401  (bench suite convention)
from repro.baselines import build_method
from repro.continual.scenario import DomainIncrementalScenario
from repro.datasets.registry import build_dataset, get_dataset_spec
from repro.federated.client import LocalTrainingConfig
from repro.federated.config import FederatedConfig
from repro.federated.increment import ClientIncrementConfig
from repro.federated.simulation import FederatedDomainIncrementalSimulation
from repro.models.backbone import BackboneConfig

NUM_CLIENTS = 4
NUM_TASKS = 2
ROUNDS_PER_TASK = 2
MODES = ("sync", "async", "buffered")
TIERS = ("mild", "moderate", "extreme")


def _build_simulation(**federated_overrides) -> FederatedDomainIncrementalSimulation:
    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=48, test_per_domain=32, num_classes=3
    )
    backbone = BackboneConfig(
        image_size=spec.image_size, num_classes=spec.num_classes,
        base_width=8, embed_dim=32, seed=0,
    )
    dataset = build_dataset("office_caltech", spec_override=spec)
    scenario = DomainIncrementalScenario(dataset, num_tasks=NUM_TASKS)
    method = build_method("finetune", backbone, num_tasks=NUM_TASKS)
    config = FederatedConfig(
        increment=ClientIncrementConfig(
            initial_clients=NUM_CLIENTS, increment_per_task=1, transfer_fraction=0.5, seed=0
        ),
        clients_per_round=NUM_CLIENTS,
        rounds_per_task=ROUNDS_PER_TASK,
        local=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.05),
        eval_batch_size=16,
        seed=0,
        eval_every=1,
        **federated_overrides,
    )
    return FederatedDomainIncrementalSimulation(scenario, method, config)


def _curve(result) -> list:
    """The accuracy-vs-simulated-time curve: one point per eval snapshot."""
    return [
        {
            "sim_time": entry["sim_time"],
            "task_id": entry["task_id"],
            "avg_accuracy": float(np.mean(list(entry["accuracies"].values()))),
        }
        for entry in result.round_eval_history
    ]


def test_async_plane_regimes(bench_record):
    # Bit-for-bit guard: the homogeneous tier only times the sync run.
    instant = _build_simulation(mode="sync", device_profile="instant").run()
    timed_sync = _build_simulation(mode="sync", device_profile="homogeneous").run()
    np.testing.assert_array_equal(instant.metrics.matrix, timed_sync.metrics.matrix)
    assert instant.round_losses == timed_sync.round_losses
    assert instant.communication.uploaded_bytes == timed_sync.communication.uploaded_bytes
    assert instant.communication.broadcast_bytes == timed_sync.communication.broadcast_bytes
    assert instant.sim_time == 0.0 and timed_sync.sim_time > 0.0

    regimes = {}
    for mode in MODES:
        per_tier = {}
        for tier in TIERS:
            result = _build_simulation(mode=mode, device_profile=tier).run()
            assert result.sim_time > 0.0
            events = [e["kind"] for e in result.event_log]
            if mode == "sync":
                assert events.count("round") + events.count("idle_round") >= 1
            else:
                assert "dispatch" in events and "arrival" in events
            per_tier[tier] = {
                "sim_time": result.sim_time,
                "avg_accuracy": result.metrics.average,
                "aggregations": len(result.round_losses),
                "events": len(result.event_log),
                "curve": _curve(result),
            }
        regimes[mode] = per_tier

    # Determinism guard: the event-driven regimes replay exactly per seed.
    replay = _build_simulation(mode="async", device_profile="extreme").run()
    first = regimes["async"]["extreme"]
    assert replay.sim_time == first["sim_time"]
    assert replay.metrics.average == first["avg_accuracy"]
    assert _curve(replay) == first["curve"]

    bench_record(
        "async_plane",
        {
            "num_tasks": NUM_TASKS,
            "rounds_per_task": ROUNDS_PER_TASK,
            "clients_per_round": NUM_CLIENTS,
            "staleness_decay": FederatedConfig.staleness_decay,
            "sync_instant_parity": True,
            "regimes": regimes,
        },
    )

    print(f"\ntemporal plane over {NUM_TASKS} tasks x {ROUNDS_PER_TASK} rounds "
          f"({NUM_CLIENTS} clients/round, finetune, simulated seconds):")
    for mode, per_tier in regimes.items():
        for tier, stats in per_tier.items():
            print(f"  {mode:8s} x {tier:9s}: t={stats['sim_time']:8.2f}s  "
                  f"avg {stats['avg_accuracy']:.4f}  "
                  f"({stats['aggregations']} aggregations, {stats['events']} events)")
