"""Local-training throughput across the three kernels — the kernel-plane bench.

The kernel plane executes the same client SGD step three ways:

* ``eager``   — closure-based autograd, one python op dispatch per tensor op;
* ``tape``    — each client's first step is traced into a compiled
  :class:`~repro.autograd.tape.Plan` and verified bit-for-bit against eager,
  then every later step is a plan replay (no graph construction);
* ``batched`` — the lockstep engine stacks a whole cohort of same-shaped
  clients along a leading axis and replays ONE vectorized plan step for all
  of them at once.

This bench trains an identical K-client cohort under each kernel and records
client-steps/second into the append-only ``kernel_plane`` section of
``BENCH_round.json``.

Asserted invariants: tape is bit-identical to eager (states and losses),
batched matches eager to float-accumulation tolerance with every client
actually taking the lockstep path, the batched kernel clears at least a 2x
steps/sec multiple over eager, and ``Tensor.backward`` frees the autograd
graph (the live-tensor count drops once gradients are in).
"""

from __future__ import annotations

import gc
import time

import numpy as np

from conftest import run_once  # noqa: F401  (bench suite convention)
from repro.autograd.tape import kernel_mode
from repro.autograd.tensor import Tensor
from repro.baselines.registry import build_method
from repro.datasets.base import ArrayDataset
from repro.federated.client import ClientHandle, LocalTrainingConfig
from repro.federated.execution import build_executor
from repro.federated.increment import ClientGroup
from repro.federated.server import FederatedServer
from repro.models.backbone import BackboneConfig

K = 16  # cohort size (equal shard sizes, so one lockstep group forms)
SAMPLES_PER_CLIENT = 64
BATCH_SIZE = 4  # small batches: dispatch overhead dominates eager, which is
ROUNDS = 2      # exactly the regime lockstep batching exists for
LOCAL_EPOCHS = 1
STEPS_PER_CLIENT = LOCAL_EPOCHS * (SAMPLES_PER_CLIENT // BATCH_SIZE)

_BACKBONE = BackboneConfig(
    image_size=16, num_classes=4, base_width=4, embed_dim=16, seed=0
)
_LOCAL = LocalTrainingConfig(
    local_epochs=LOCAL_EPOCHS, batch_size=BATCH_SIZE, learning_rate=0.05
)


def _make_clients() -> list:
    clients = []
    for client_id in range(K):
        data_rng = np.random.default_rng(1000 + client_id)
        images = data_rng.uniform(0.0, 1.0, size=(SAMPLES_PER_CLIENT, 3, 16, 16))
        labels = data_rng.integers(0, 4, size=SAMPLES_PER_CLIENT)
        clients.append(
            ClientHandle(
                client_id=client_id,
                task_id=0,
                group=ClientGroup.NEW,
                dataset=ArrayDataset(images, labels),
                rng=np.random.default_rng(2000 + client_id),
                training=_LOCAL,
            )
        )
    return clients


def _train_cohort(kernel: str):
    """Train the same K-client cohort for ROUNDS rounds under one kernel."""
    method = build_method("finetune", _BACKBONE, num_tasks=1)
    model = method.build_model()
    server = FederatedServer(model)
    executor = build_executor("serial", kernel=kernel)
    losses, final_states = [], None
    start = time.perf_counter()
    with kernel_mode(kernel):  # what the simulation loop does around run_task
        for _ in range(ROUNDS):
            clients = _make_clients()  # fresh rngs: every kernel sees identical draws
            updates = executor.run_round(method, model, server.broadcast_view(), clients)
            losses.append([u.train_loss for u in updates])
            final_states = [u.state_dict for u in updates]
            server.aggregate(updates)
    elapsed = time.perf_counter() - start
    steps_per_sec = (K * STEPS_PER_CLIENT * ROUNDS) / elapsed
    telemetry = getattr(executor, "telemetry", None)
    return {
        "elapsed": elapsed,
        "steps_per_sec": steps_per_sec,
        "losses": losses,
        "states": final_states,
        "telemetry": telemetry,
    }


def _assert_backward_frees_graph(method, model, client) -> dict:
    """The satellite memory guard: backward must release the autograd graph."""
    images = Tensor(client.dataset.images[:BATCH_SIZE])
    labels = client.dataset.labels[:BATCH_SIZE]
    loss = method.batch_loss(model, images, labels, client)
    gc.collect()
    alive_with_graph = sum(1 for obj in gc.get_objects() if isinstance(obj, Tensor))
    loss.backward()
    gc.collect()
    alive_after_backward = sum(1 for obj in gc.get_objects() if isinstance(obj, Tensor))
    freed = alive_with_graph - alive_after_backward
    # The whole interior of the graph (activations) must become collectable;
    # anything close to zero means backward is pinning the closures again.
    assert freed > 0.5 * alive_with_graph, (
        f"backward freed only {freed} of {alive_with_graph} live tensors"
    )
    return {"tensors_with_graph": alive_with_graph, "tensors_after_backward": alive_after_backward}


def test_kernel_plane_throughput(bench_record):
    eager = _train_cohort("eager")
    tape = _train_cohort("tape")
    batched = _train_cohort("batched")

    # tape is the same numbers, bit for bit.
    assert tape["losses"] == eager["losses"]
    for state_a, state_b in zip(eager["states"], tape["states"]):
        for name in state_a:
            np.testing.assert_array_equal(state_a[name], state_b[name])

    # batched reorders float accumulation: tolerance-level parity, and the
    # whole cohort must actually have run in lockstep (no silent fallback).
    for round_a, round_b in zip(eager["losses"], batched["losses"]):
        np.testing.assert_allclose(round_a, round_b, atol=1e-9)
    for state_a, state_b in zip(eager["states"], batched["states"]):
        for name in state_a:
            np.testing.assert_allclose(state_a[name], state_b[name], atol=1e-9)
    telemetry = batched["telemetry"]
    assert telemetry.lockstep_clients == K * ROUNDS
    assert telemetry.fallback_clients == 0

    batched_multiple = batched["steps_per_sec"] / eager["steps_per_sec"]
    tape_multiple = tape["steps_per_sec"] / eager["steps_per_sec"]
    assert batched_multiple >= 2.0, (
        f"lockstep batching must clear 2x eager, got {batched_multiple:.2f}x"
    )

    method = build_method("finetune", _BACKBONE, num_tasks=1)
    memory = _assert_backward_frees_graph(method, method.build_model(), _make_clients()[0])

    bench_record(
        "kernel_plane",
        {
            "cohort": K,
            "steps_per_client_per_round": STEPS_PER_CLIENT,
            "rounds": ROUNDS,
            "eager_steps_per_sec": eager["steps_per_sec"],
            "tape_steps_per_sec": tape["steps_per_sec"],
            "batched_steps_per_sec": batched["steps_per_sec"],
            "tape_multiple": tape_multiple,
            "batched_multiple": batched_multiple,
            "tape_bit_identical": True,
            "lockstep_clients": telemetry.lockstep_clients,
            "plans_compiled": telemetry.plans_compiled,
            "backward_frees_graph": memory,
        },
    )

    print(
        f"\nkernel plane ({K} clients x {STEPS_PER_CLIENT} steps x {ROUNDS} rounds):\n"
        f"  eager   {eager['steps_per_sec']:8.1f} steps/s\n"
        f"  tape    {tape['steps_per_sec']:8.1f} steps/s ({tape_multiple:.2f}x, bit-identical)\n"
        f"  batched {batched['steps_per_sec']:8.1f} steps/s ({batched_multiple:.2f}x, "
        f"{telemetry.lockstep_clients} lockstep clients)"
    )
