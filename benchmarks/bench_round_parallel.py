"""Serial vs parallel execution of one federated communication round.

A round is embarrassingly parallel between broadcast and aggregate, which is
exactly what :class:`repro.federated.execution.ParallelExecutor` exploits: the
broadcast state is serialized once per round (instead of deep-copied once per
client) and the selected clients train concurrently on per-worker model
replicas.  This bench measures a ≥4-client round under the serial and the
parallel executor (``num_workers=4``), verifies the two produce identical
updates, and records per-phase wall-clock plus the speedup into
``BENCH_round.json``.

Note: the speedup scales with physical cores; on a single-core CI box the
parallel executor can only match serial (minus pool overhead), so the bench
reports the measurement without asserting a minimum speedup.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RefFiLConfig, RefFiLMethod
from repro.datasets.registry import get_dataset_spec
from repro.datasets.synthetic import generate_domain_split
from repro.federated.client import ClientHandle, LocalTrainingConfig
from repro.federated.execution import ParallelExecutor, SerialExecutor
from repro.federated.increment import ClientGroup
from repro.federated.server import FederatedServer
from repro.models.backbone import BackboneConfig
from repro.utils.rng import spawn_rng
from repro.utils.timing import Timer

NUM_CLIENTS = 4
NUM_WORKERS = 4
ROUND_REPS = 2


def _build_round():
    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=96, test_per_domain=16, num_classes=4
    )
    backbone = BackboneConfig(
        image_size=spec.image_size, num_classes=spec.num_classes,
        base_width=8, embed_dim=32, seed=0,
    )
    method = RefFiLMethod(RefFiLConfig(backbone=backbone, max_tasks=2))
    model = method.build_model()
    server = FederatedServer(model)
    data = generate_domain_split(spec, 0, "train")
    shard = len(data) // NUM_CLIENTS
    clients = [
        ClientHandle(
            client_id=i,
            task_id=0,
            group=ClientGroup.NEW,
            dataset=data.subset(np.arange(i * shard, (i + 1) * shard)),
            rng=spawn_rng(0, "client", i, 0, 0),
            training=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.05),
        )
        for i in range(NUM_CLIENTS)
    ]
    return method, model, server, clients


def test_round_serial_vs_parallel(benchmark, bench_record):
    method, model, server, clients = _build_round()
    timer = Timer()

    serial = SerialExecutor()
    # First round is warm-up (cold caches), excluded from timing exactly like
    # the parallel path's pool warm-up, so the comparison is symmetric.
    with timer.measure("serial_warmup"):
        serial_updates = serial.run_round(method, model, server.broadcast_view(), clients)

    def serial_rounds():
        for _ in range(ROUND_REPS):
            with timer.measure("serial_round"):
                serial.run_round(method, model, server.broadcast_view(), clients)

    benchmark.pedantic(serial_rounds, rounds=1, iterations=1, warmup_rounds=0)

    # Fresh handles for the parity check: the timing loop above consumed the
    # original clients' RNG streams in place, so rebuild identical ones.
    _, _, _, fresh_clients = _build_round()
    with ParallelExecutor(num_workers=NUM_WORKERS) as parallel:
        # Warm-up pays the one-time pool fork + import cost outside the timing.
        with timer.measure("parallel_warmup"):
            parallel_updates = parallel.run_round(
                method, model, server.broadcast_view(), fresh_clients
            )
        for _ in range(ROUND_REPS):
            with timer.measure("parallel_round"):
                parallel.run_round(method, model, server.broadcast_view(), fresh_clients)

    # Executor parity: both paths must produce identical client updates.
    assert len(serial_updates) == len(parallel_updates) == NUM_CLIENTS
    for left, right in zip(serial_updates, parallel_updates):
        assert left.client_id == right.client_id
        assert left.train_loss == right.train_loss
        for key in left.state_dict:
            np.testing.assert_array_equal(left.state_dict[key], right.state_dict[key])

    serial_s = timer.total("serial_round") / timer.count("serial_round")
    parallel_s = timer.total("parallel_round") / timer.count("parallel_round")
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    bench_record(
        "round_parallel",
        {
            "clients_per_round": NUM_CLIENTS,
            "num_workers": NUM_WORKERS,
            "serial_round_s": serial_s,
            "parallel_round_s": parallel_s,
            "parallel_warmup_s": timer.total("parallel_warmup"),
            "speedup": speedup,
            "parity": True,
        },
    )
    print(f"\nround of {NUM_CLIENTS} clients (mean of {timer.count('serial_round')} serial / "
          f"{timer.count('parallel_round')} parallel reps, warm-ups excluded):")
    print(f"  serial   : {serial_s * 1000:.1f} ms")
    print(f"  parallel : {parallel_s * 1000:.1f} ms  (num_workers={NUM_WORKERS}, "
          f"warmup {timer.total('parallel_warmup') * 1000:.0f} ms)")
    print(f"  speedup  : {speedup:.2f}x (scales with physical cores)")


@pytest.mark.slow
def test_round_parallel_full_simulation_parity(bench_record):
    """Whole-run parity at bench scale: serial and parallel runs are identical."""
    from repro.continual.scenario import DomainIncrementalScenario
    from repro.datasets.registry import build_dataset
    from repro.federated.config import FederatedConfig
    from repro.federated.increment import ClientIncrementConfig
    from repro.federated.simulation import FederatedDomainIncrementalSimulation

    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=48, test_per_domain=16, num_classes=3
    )
    backbone = BackboneConfig(
        image_size=spec.image_size, num_classes=spec.num_classes,
        base_width=8, embed_dim=32, seed=0,
    )

    def run(executor):
        dataset = build_dataset("office_caltech", spec_override=spec)
        scenario = DomainIncrementalScenario(dataset, num_tasks=2)
        method = RefFiLMethod(RefFiLConfig(backbone=backbone, max_tasks=2))
        config = FederatedConfig(
            increment=ClientIncrementConfig(
                initial_clients=NUM_CLIENTS, increment_per_task=1, transfer_fraction=0.5, seed=0
            ),
            clients_per_round=NUM_CLIENTS,
            rounds_per_task=1,
            local=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.05),
            seed=0,
            executor=executor,
            num_workers=NUM_WORKERS,
        )
        return FederatedDomainIncrementalSimulation(scenario, method, config).run()

    serial_result = run("serial")
    parallel_result = run("parallel")
    np.testing.assert_array_equal(serial_result.metrics.matrix, parallel_result.metrics.matrix)
    assert serial_result.round_losses == parallel_result.round_losses
    bench_record("round_parallel", {"full_simulation_parity": True})
