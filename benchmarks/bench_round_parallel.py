"""Serial vs parallel execution of one federated communication round.

A round is embarrassingly parallel between broadcast and aggregate, which is
exactly what :class:`repro.federated.execution.ParallelExecutor` exploits: the
broadcast state is serialized once per round (instead of deep-copied once per
client) and the selected clients train concurrently on per-worker model
replicas.  This bench measures a ≥4-client round under the serial and the
parallel executor (``num_workers=4``), verifies the two produce identical
updates, and records per-phase wall-clock plus the speedup into
``BENCH_round.json``.

The IPC section (``round_ipc``) exercises the client data plane over a
two-task stream: with the per-worker shard cache on, a client's shard crosses
the process boundary only on the first round of each task (per-round shard
bytes drop to ~0 afterwards; the task boundary re-ships because in-between
style concatenation changes the shard fingerprint), while the uncached
baseline re-ships every round.  Serial, cached-parallel and uncached-parallel
updates are asserted identical round by round.

Note: the speedup scales with physical cores; on a single-core CI box the
parallel executor can only match serial (minus pool overhead), so the bench
reports the measurement without asserting a minimum speedup.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RefFiLConfig, RefFiLMethod
from repro.datasets.registry import get_dataset_spec
from repro.datasets.synthetic import generate_domain_split
from repro.federated.client import ClientHandle, LocalTrainingConfig
from repro.federated.execution import ParallelExecutor, SerialExecutor
from repro.federated.increment import ClientGroup
from repro.federated.server import FederatedServer
from repro.models.backbone import BackboneConfig
from repro.utils.rng import spawn_rng
from repro.utils.timing import Timer

NUM_CLIENTS = 4
NUM_WORKERS = 4
ROUND_REPS = 2


def _build_round():
    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=96, test_per_domain=16, num_classes=4
    )
    backbone = BackboneConfig(
        image_size=spec.image_size, num_classes=spec.num_classes,
        base_width=8, embed_dim=32, seed=0,
    )
    method = RefFiLMethod(RefFiLConfig(backbone=backbone, max_tasks=2))
    model = method.build_model()
    server = FederatedServer(model)
    data = generate_domain_split(spec, 0, "train")
    shard = len(data) // NUM_CLIENTS
    clients = [
        ClientHandle(
            client_id=i,
            task_id=0,
            group=ClientGroup.NEW,
            dataset=data.subset(np.arange(i * shard, (i + 1) * shard)),
            rng=spawn_rng(0, "client", i, 0, 0),
            training=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.05),
        )
        for i in range(NUM_CLIENTS)
    ]
    return method, model, server, clients


def test_round_serial_vs_parallel(benchmark, bench_record):
    method, model, server, clients = _build_round()
    timer = Timer()

    serial = SerialExecutor()
    # First round is warm-up (cold caches), excluded from timing exactly like
    # the parallel path's pool warm-up, so the comparison is symmetric.
    with timer.measure("serial_warmup"):
        serial_updates = serial.run_round(method, model, server.broadcast_view(), clients)

    def serial_rounds():
        for _ in range(ROUND_REPS):
            with timer.measure("serial_round"):
                serial.run_round(method, model, server.broadcast_view(), clients)

    benchmark.pedantic(serial_rounds, rounds=1, iterations=1, warmup_rounds=0)

    # Fresh handles for the parity check: the timing loop above consumed the
    # original clients' RNG streams in place, so rebuild identical ones.
    _, _, _, fresh_clients = _build_round()
    with ParallelExecutor(num_workers=NUM_WORKERS) as parallel:
        # Warm-up pays the one-time pool fork + import cost (and the task's
        # one-time shard shipment) outside the timing.
        with timer.measure("parallel_warmup"):
            parallel_updates = parallel.run_round(
                method, model, server.broadcast_view(), fresh_clients
            )
        for _ in range(ROUND_REPS):
            with timer.measure("parallel_round"):
                parallel.run_round(method, model, server.broadcast_view(), fresh_clients)
        ipc_log = parallel.ipc_log

    # Executor parity: both paths must produce identical client updates.
    assert len(serial_updates) == len(parallel_updates) == NUM_CLIENTS
    for left, right in zip(serial_updates, parallel_updates):
        assert left.client_id == right.client_id
        assert left.train_loss == right.train_loss
        for key in left.state_dict:
            np.testing.assert_array_equal(left.state_dict[key], right.state_dict[key])

    serial_s = timer.total("serial_round") / timer.count("serial_round")
    parallel_s = timer.total("parallel_round") / timer.count("parallel_round")
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    bench_record(
        "round_parallel",
        {
            "clients_per_round": NUM_CLIENTS,
            "num_workers": NUM_WORKERS,
            "serial_round_s": serial_s,
            "parallel_round_s": parallel_s,
            "parallel_warmup_s": timer.total("parallel_warmup"),
            "speedup": speedup,
            "parity": True,
            # Shard IPC of the timed reps: the warm-up round ships every
            # shard, the timed rounds run on pure cache hits (0 bytes).
            "warmup_shard_bytes": ipc_log[0].shard_bytes,
            "timed_round_shard_bytes": ipc_log[-1].shard_bytes,
        },
    )
    # The timed reps reuse the warm-up's shards: pure cache hits, zero bytes.
    assert ipc_log[0].shard_bytes > 0
    assert all(ipc.shard_bytes == 0 for ipc in ipc_log[1:])
    print(f"\nround of {NUM_CLIENTS} clients (mean of {timer.count('serial_round')} serial / "
          f"{timer.count('parallel_round')} parallel reps, warm-ups excluded):")
    print(f"  serial   : {serial_s * 1000:.1f} ms")
    print(f"  parallel : {parallel_s * 1000:.1f} ms  (num_workers={NUM_WORKERS}, "
          f"warmup {timer.total('parallel_warmup') * 1000:.0f} ms)")
    print(f"  speedup  : {speedup:.2f}x (scales with physical cores)")
    print(f"  shard IPC: {ipc_log[0].shard_bytes} B warm-up round, "
          f"{ipc_log[-1].shard_bytes} B per timed round (cache hits)")


def _multitask_datasets():
    """Two tasks' client shards; task-1 shards concatenate task-0 data the way
    in-between clients do, so the cached run exercises fingerprint invalidation."""
    from repro.datasets.base import ArrayDataset

    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=96, test_per_domain=16, num_classes=4
    )
    per_task = []
    for task_id in range(2):
        data = generate_domain_split(spec, task_id, "train")
        shard = len(data) // NUM_CLIENTS
        per_task.append(
            [data.subset(np.arange(i * shard, (i + 1) * shard)) for i in range(NUM_CLIENTS)]
        )
    merged = [
        ArrayDataset.concatenate((old, new)) for old, new in zip(per_task[0], per_task[1])
    ]
    return spec, [per_task[0], merged]


def _multitask_handles(task_datasets, task_id, round_index):
    return [
        ClientHandle(
            client_id=i,
            task_id=task_id,
            group=ClientGroup.IN_BETWEEN if task_id else ClientGroup.NEW,
            dataset=dataset,
            rng=spawn_rng(0, "client", i, task_id, round_index),
            training=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.05),
        )
        for i, dataset in enumerate(task_datasets[task_id])
    ]


def test_round_ipc_multitask_parity(bench_record):
    """The data-plane contract, measured: per-round shard bytes drop to ~0
    after each task's first round with the cache on, the task boundary
    re-ships, the uncached baseline pays every round — and all three
    executions (serial, cached, uncached) produce identical updates."""
    ROUNDS_PER_TASK = 2
    spec, task_datasets = _multitask_datasets()
    backbone = BackboneConfig(
        image_size=spec.image_size, num_classes=spec.num_classes,
        base_width=8, embed_dim=32, seed=0,
    )

    def run(make_executor):
        method = RefFiLMethod(RefFiLConfig(backbone=backbone, max_tasks=2))
        model = method.build_model()
        server = FederatedServer(model)
        rounds = []
        with make_executor() as executor:
            for task_id in range(2):
                for round_index in range(ROUNDS_PER_TASK):
                    handles = _multitask_handles(task_datasets, task_id, round_index)
                    rounds.append(
                        executor.run_round(method, model, server.broadcast_view(), handles)
                    )
            return rounds, getattr(executor, "ipc_log", None)

    serial_rounds, _ = run(SerialExecutor)
    cached_rounds, cached_log = run(lambda: ParallelExecutor(num_workers=NUM_WORKERS))
    uncached_rounds, uncached_log = run(
        lambda: ParallelExecutor(num_workers=NUM_WORKERS, shard_cache=False)
    )

    for candidate_rounds in (cached_rounds, uncached_rounds):
        assert len(candidate_rounds) == len(serial_rounds)
        for reference, candidate in zip(serial_rounds, candidate_rounds):
            assert [u.client_id for u in reference] == [u.client_id for u in candidate]
            assert [u.train_loss for u in reference] == [u.train_loss for u in candidate]
            for left, right in zip(reference, candidate):
                for key in left.state_dict:
                    np.testing.assert_array_equal(left.state_dict[key], right.state_dict[key])

    cached_bytes = [ipc.shard_bytes for ipc in cached_log]
    uncached_bytes = [ipc.shard_bytes for ipc in uncached_log]
    # Cache on: first round of each task ships, later rounds are hits.
    assert cached_bytes[0] > 0 and cached_bytes[ROUNDS_PER_TASK] > 0
    assert all(
        b == 0
        for task in range(2)
        for b in cached_bytes[task * ROUNDS_PER_TASK + 1 : (task + 1) * ROUNDS_PER_TASK]
    )
    # Task-1 shards are concatenations (bigger fingerprinted payloads), so the
    # boundary genuinely re-shipped rather than reusing task-0 entries.
    assert cached_bytes[ROUNDS_PER_TASK] > cached_bytes[0]
    # Cache off: every round pays full shard IPC.
    assert all(b > 0 for b in uncached_bytes)

    bench_record(
        "round_ipc",
        {
            "clients_per_round": NUM_CLIENTS,
            "num_workers": NUM_WORKERS,
            "num_tasks": 2,
            "rounds_per_task": ROUNDS_PER_TASK,
            "shard_bytes_per_round_cached": cached_bytes,
            "shard_bytes_per_round_uncached": uncached_bytes,
            "cache_hits_total": sum(ipc.cache_hits for ipc in cached_log),
            "broadcast_bytes_per_round": cached_log[0].broadcast_bytes,
            "multitask_parity": True,
        },
    )
    print(f"\nshard IPC per round over 2 tasks x {ROUNDS_PER_TASK} rounds "
          f"({NUM_CLIENTS} clients, num_workers={NUM_WORKERS}):")
    print(f"  cached   : {cached_bytes} B")
    print(f"  uncached : {uncached_bytes} B")


@pytest.mark.slow
def test_round_parallel_full_simulation_parity(bench_record):
    """Whole-run parity at bench scale: serial and parallel (with and without
    the shard cache) are identical over a multi-task run whose two rounds per
    task exercise cache hits and whose task boundary exercises invalidation."""
    from repro.continual.scenario import DomainIncrementalScenario
    from repro.datasets.registry import build_dataset
    from repro.federated.config import FederatedConfig
    from repro.federated.increment import ClientIncrementConfig
    from repro.federated.simulation import FederatedDomainIncrementalSimulation

    spec = get_dataset_spec("office_caltech").scaled(
        train_per_domain=48, test_per_domain=16, num_classes=3
    )
    backbone = BackboneConfig(
        image_size=spec.image_size, num_classes=spec.num_classes,
        base_width=8, embed_dim=32, seed=0,
    )

    def run(executor, shard_cache=True):
        dataset = build_dataset("office_caltech", spec_override=spec)
        scenario = DomainIncrementalScenario(dataset, num_tasks=2)
        method = RefFiLMethod(RefFiLConfig(backbone=backbone, max_tasks=2))
        config = FederatedConfig(
            increment=ClientIncrementConfig(
                initial_clients=NUM_CLIENTS, increment_per_task=1, transfer_fraction=0.5, seed=0
            ),
            clients_per_round=NUM_CLIENTS,
            rounds_per_task=2,
            local=LocalTrainingConfig(local_epochs=1, batch_size=16, learning_rate=0.05),
            seed=0,
            executor=executor,
            num_workers=NUM_WORKERS,
            shard_cache=shard_cache,
        )
        return FederatedDomainIncrementalSimulation(scenario, method, config).run()

    serial_result = run("serial")
    for shard_cache in (True, False):
        parallel_result = run("parallel", shard_cache=shard_cache)
        np.testing.assert_array_equal(
            serial_result.metrics.matrix, parallel_result.metrics.matrix
        )
        assert serial_result.round_losses == parallel_result.round_losses
    bench_record("round_parallel", {"full_simulation_parity": True})
