"""Table V: OfficeCaltech10 under four client-selection / task-transfer configurations."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.tables import COMPARED_METHODS, TABLE5_CONFIGS, table5_client_configs


def test_table5_client_configs(benchmark, scale):
    tables = run_once(benchmark, lambda: table5_client_configs(scale=scale))
    assert set(tables) == {label for label, _, _ in TABLE5_CONFIGS}
    for label, table in tables.items():
        print("\n" + table.to_text())
        assert len(table.rows) == len(COMPARED_METHODS)
        assert table.columns == ["AVG", "Last", "FGT", "BwT"]
        for values in table.rows.values():
            assert 0.0 <= values["AVG"] <= 100.0
            assert -1.0 <= values["FGT"] <= 1.0
            assert -1.0 <= values["BwT"] <= 1.0
